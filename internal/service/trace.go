package service

import (
	"errors"
	"fmt"
	"net/http"

	"rdramstream/internal/obs"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
)

// TraceHeader is the first NDJSON line of a POST /v1/trace body: the
// tracegen.Header fields plus the scenario to replay the trace under.
// Exactly Accesses tracegen.Line rows follow; the response is the same
// SimulateResponse as POST /v1/simulate. The scenario's Workload must
// not itself carry a program or access list — the body IS the trace —
// but may set the replay pipeline depth (Outstanding).
//
// rdlint:wire — trace-ingestion wire format.
type TraceHeader struct {
	// Format must be tracegen.FormatV1.
	Format string `json:"format"`
	// Name labels the trace.
	Name string `json:"name,omitempty"`
	// Accesses is the exact number of access lines that follow.
	Accesses int `json:"accesses"`
	// Scenario configures the replay (scheme, line size, controller,
	// device, faults). Kernel fields must be unset.
	Scenario sim.Scenario `json:"scenario"`
}

// handleTrace ingests a streamed NDJSON trace and runs it through the
// same queue, cache, and telemetry path as every other scenario: the
// decoded accesses become the scenario's Workload, whose cache key is
// the trace's content digest — so re-POSTing an identical trace (or
// submitting the generator program it came from) is a cache hit, and
// the fabric shards it to the same worker.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	dec := tracegen.NewDecoder(r.Body)
	var hdr TraceHeader
	if err := dec.DecodeHeader(&hdr); err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	if hdr.Format != tracegen.FormatV1 {
		failRequest(w, r, http.StatusBadRequest,
			fmt.Errorf("service: unknown trace format %q (want %q)", hdr.Format, tracegen.FormatV1))
		return
	}
	accs, err := dec.ReadAccesses(hdr.Accesses)
	if err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	sc := hdr.Scenario
	spec := tracegen.Spec{Accesses: accs}
	if sc.Workload != nil {
		if sc.Workload.Program != nil || len(sc.Workload.Accesses) > 0 {
			failRequest(w, r, http.StatusBadRequest,
				errors.New("service: the scenario of a trace POST must not carry an inline program or access list; the body is the trace"))
			return
		}
		spec.Outstanding = sc.Workload.Outstanding
	}
	sc.Workload = &spec

	key, err := resultcache.Key(sc)
	if err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	tr := obs.FromContext(r.Context())
	tr.AddScenarios(1)
	job, err := s.SubmitOne(r.Context(), sc)
	if err != nil {
		failRequest(w, r, submitStatus(err), err)
		return
	}
	streamStart := s.obsv.Now()
	res, err := job.WaitResult(r.Context(), 0)
	if err != nil {
		failRequest(w, r, http.StatusServiceUnavailable, err)
		return
	}
	if res.Error != "" {
		failRequest(w, r, http.StatusUnprocessableEntity, errors.New(res.Error))
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		JobID: job.ID(), Cached: res.Cached, Key: key, Outcome: *res.Outcome,
	})
	streamEnd := s.obsv.Now()
	tr.Span(obs.StageStream, streamStart, streamEnd, "")
	s.observeStage(obs.StageStream, streamEnd.Sub(streamStart))
}
