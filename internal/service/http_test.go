package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/service"
	"rdramstream/internal/service/client"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

func scenario(n int) sim.Scenario {
	return sim.Scenario{
		KernelName: "daxpy", N: n, Scheme: addrmap.PI, Mode: sim.SMC,
		FIFODepth: 32, Placement: stream.Staggered,
	}
}

func startServer(t *testing.T) (*httptest.Server, *client.Client) {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return ts, client.New(ts.URL)
}

// TestSimulateEndpointByteIdentical is the acceptance criterion: the
// /v1/simulate outcome must be byte-identical JSON to a direct sim.Run of
// the same scenario, the repeat must be a cache hit, and the two bodies
// must agree.
func TestSimulateEndpointByteIdentical(t *testing.T) {
	ts, _ := startServer(t)
	sc := scenario(256)
	direct, err := sim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}

	post := func() (service.SimulateResponse, []byte) {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		var out service.SimulateResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decoding %s: %v", raw, err)
		}
		return out, raw
	}

	first, _ := post()
	second, _ := post()
	if first.Cached {
		t.Error("first request reported a cache hit")
	}
	if !second.Cached {
		t.Error("second identical request was not a cache hit")
	}
	for name, got := range map[string]sim.Outcome{"miss": first.Outcome, "hit": second.Outcome} {
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, directJSON) {
			t.Errorf("%s outcome not byte-identical to direct sim.Run:\n  got  %s\n  want %s", name, gotJSON, directJSON)
		}
	}
	if first.Key == "" || first.Key != second.Key {
		t.Errorf("cache keys differ between identical requests: %q vs %q", first.Key, second.Key)
	}
}

func TestSweepEndpointStreamsInOrder(t *testing.T) {
	ts, cl := startServer(t)
	_ = ts
	var scs []sim.Scenario
	lengths := []int{64, 128, 256, 64}
	for _, n := range lengths {
		scs = append(scs, scenario(n))
	}

	var lines []service.SweepLine
	summary, err := cl.Sweep(context.Background(), scs, func(l service.SweepLine) error {
		lines = append(lines, l)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(scs) {
		t.Fatalf("streamed %d result lines for %d scenarios", len(lines), len(scs))
	}
	for i, l := range lines {
		if l.Index != i {
			t.Errorf("line %d carries index %d — stream out of input order", i, l.Index)
		}
		if l.Error != "" || l.Outcome == nil {
			t.Errorf("line %d: error=%q outcome=%v", i, l.Error, l.Outcome)
			continue
		}
		direct, err := sim.Run(scs[i])
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(direct)
		got, _ := json.Marshal(*l.Outcome)
		if !bytes.Equal(got, want) {
			t.Errorf("scenario %d outcome differs from direct run", i)
		}
	}
	if !summary.Done || summary.Total != len(scs) || summary.Failed != 0 {
		t.Errorf("summary = %+v", summary)
	}
	if summary.CacheHits == 0 {
		t.Error("duplicate scenario in sweep produced no cache hit")
	}
	if summary.JobID == "" {
		t.Fatal("summary carries no job id")
	}

	// The finished job stays queryable.
	st, err := cl.Job(context.Background(), summary.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != service.StateDone || st.Completed != len(scs) {
		t.Errorf("job status = %+v", st)
	}
}

func TestSweepOutcomesMatchesSimRunAll(t *testing.T) {
	_, cl := startServer(t)
	var scs []sim.Scenario
	for _, n := range []int{64, 128, 256} {
		scs = append(scs, scenario(n))
	}
	local, err := sim.RunAll(scs, 1)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := cl.SweepOutcomes(context.Background(), scs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(local)
	got, _ := json.Marshal(remote)
	if !bytes.Equal(got, want) {
		t.Errorf("remote sweep differs from local RunAll:\n  got  %s\n  want %s", got, want)
	}
}

func TestBadRequests(t *testing.T) {
	ts, cl := startServer(t)
	cases := map[string]struct {
		path, body string
		status     int
	}{
		"malformed json":  {"/v1/simulate", "{", http.StatusBadRequest},
		"unknown field":   {"/v1/simulate", `{"KernelName":"daxpy","Typo":1}`, http.StatusBadRequest},
		"invalid kernel":  {"/v1/simulate", `{"KernelName":"nope","N":64}`, http.StatusBadRequest},
		"empty sweep":     {"/v1/sweep", `{"scenarios":[]}`, http.StatusBadRequest},
		"invalid in list": {"/v1/sweep", `{"scenarios":[{"KernelName":"daxpy","N":-1}]}`, http.StatusBadRequest},
	}
	for name, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (body %s), want %d", name, resp.StatusCode, body, tc.status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %s is not an {error: ...} object", name, body)
		}
	}

	if _, err := cl.Job(context.Background(), "job-999999"); err == nil {
		t.Error("unknown job id did not error")
	}
}

func TestHealthAndMetrics(t *testing.T) {
	_, cl := startServer(t)
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !strings.Contains(h.Version, "rdramstream") {
		t.Errorf("health = %+v", h)
	}

	if _, err := cl.Simulate(context.Background(), scenario(128)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Simulate(context.Background(), scenario(128)); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Misses != 1 || m.Cache.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss + 1 hit", m.Cache)
	}
	if m.Queue.Capacity == 0 || m.Workers.Configured == 0 {
		t.Errorf("metrics missing queue/worker config: %+v", m)
	}
	if len(m.Stalls) == 0 {
		t.Error("metrics carry no stall aggregates after an executed run")
	}
}
