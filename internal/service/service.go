// Package service is the simulation serving layer: a job queue that
// accepts single scenarios and whole sweeps, coalesces queued work into
// batches, and executes the batches on the engine's bounded worker pool
// through the content-addressed result cache (internal/resultcache).
// Identical scenarios — across requests, across jobs, across time — run
// once; everything else runs at the configured parallelism with
// per-request cancellation threaded down to the scenario boundary via
// engine.MapCtx.
//
// The HTTP front end (http.go, served by cmd/rdserved) and the Go client
// (client subpackage) are thin shells over this type: all queueing,
// batching, caching, and telemetry-aggregation behavior lives here and is
// exercised directly by the package tests.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rdramstream/internal/engine"
	"rdramstream/internal/obs"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/sim"
	"rdramstream/internal/telemetry"
	"rdramstream/internal/version"
)

// Config sizes a Service. The zero value is usable.
type Config struct {
	// Workers bounds the simulation worker pool (<= 0 uses GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-not-started scenarios
	// across all jobs (default 1024). Submissions that would overflow fail
	// with ErrQueueFull — all-or-nothing, never a partial sweep.
	QueueDepth int
	// BatchSize is the most scenarios one dispatcher batch hands to
	// engine.MapCtx (default 32). Batching amortizes pool startup and
	// lets concurrent small requests share one worker-pool spin-up.
	BatchSize int
	// JobRetention is how many finished jobs remain queryable through
	// Job/GET /v1/jobs after completion (default 256, oldest evicted).
	JobRetention int
	// Cache, when non-nil, is the result cache to serve from; nil builds
	// a default in-memory cache (1024 entries, no disk store).
	Cache *resultcache.Cache
	// Obs, when non-nil, is the observability state (trace ring + metrics
	// registry) the service records into; nil builds a default Observer.
	// Wall-clock timing lives here and in internal/obs — never in the
	// simulation core — and attaching it cannot change any simulated
	// outcome: traces and histograms only watch the request path.
	Obs *obs.Observer
}

// Submission/lifecycle errors, matchable with errors.Is.
var (
	ErrClosed     = errors.New("service: closed")
	ErrQueueFull  = errors.New("service: queue full")
	ErrEmptyJob   = errors.New("service: job has no scenarios")
	ErrUnknownJob = errors.New("service: unknown job")
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
)

// ScenarioResult is one scenario's terminal record within a job.
type ScenarioResult struct {
	Index int `json:"index"`
	// Label is the scenario's kernel/scheme/controller identifier.
	Label string `json:"label"`
	// Cached reports whether the outcome came from the result cache
	// rather than a fresh simulation (in-flight dedup counts as fresh).
	Cached  bool         `json:"cached"`
	Outcome *sim.Outcome `json:"outcome,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// JobStatus is a point-in-time snapshot of a job.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	CacheHits int    `json:"cache_hits"`
	// Results holds one entry per finished scenario, in input order;
	// pending scenarios are nil.
	Results []*ScenarioResult `json:"results,omitempty"`
}

// Job tracks one submission (a single scenario or a whole sweep) through
// the queue. Results land in input order as scenarios finish.
type Job struct {
	id  string
	ctx context.Context

	mu        sync.Mutex
	state     State             // guarded by mu
	completed int               // guarded by mu
	failed    int               // guarded by mu
	cacheHits int               // guarded by mu
	results   []*ScenarioResult // guarded by mu
	ready     []chan struct{}   // ready[i] closes when results[i] lands; the slice is sized at construction and never reassigned
	done      chan struct{}     // closes when every scenario is terminal
}

// ID returns the job's queryable identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when every scenario in the job is
// terminal.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is done.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// WaitResult blocks until scenario i's result lands (or ctx is done) and
// returns it. Streaming responses call it for i = 0, 1, 2, … to emit
// results in input order as they complete.
func (j *Job) WaitResult(ctx context.Context, i int) (ScenarioResult, error) {
	if i < 0 || i >= len(j.ready) {
		return ScenarioResult{}, fmt.Errorf("service: job %s has no scenario %d", j.id, i)
	}
	select {
	case <-j.ready[i]:
		return *j.result(i), nil
	case <-ctx.Done():
		return ScenarioResult{}, context.Cause(ctx)
	}
}

func (j *Job) result(i int) *ScenarioResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.results[i]
}

// Status snapshots the job. Finished scenario results are shared (never
// mutated after landing); the slice itself is a copy.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Total: len(j.results),
		Completed: j.completed, Failed: j.failed, CacheHits: j.cacheHits,
		Results: make([]*ScenarioResult, len(j.results)),
	}
	copy(st.Results, j.results)
	return st
}

func (j *Job) markRunning() {
	j.mu.Lock()
	if j.state == StateQueued {
		j.state = StateRunning
	}
	j.mu.Unlock()
}

// finish records scenario i's terminal result exactly once.
func (j *Job) finish(i int, res ScenarioResult) {
	j.mu.Lock()
	if j.results[i] != nil {
		j.mu.Unlock()
		return
	}
	res.Index = i
	j.results[i] = &res
	j.completed++
	if res.Error != "" {
		j.failed++
	}
	if res.Cached {
		j.cacheHits++
	}
	allDone := j.completed == len(j.results)
	if allDone {
		j.state = StateDone
	}
	j.mu.Unlock()
	close(j.ready[i])
	if allDone {
		close(j.done)
	}
}

// task is one scenario of one job, the unit the queue and worker pool
// move around. The timestamps delimit its queue life: submitted is set at
// Submit, batched when the dispatcher coalesces it — runTask turns the
// gaps into queued and batch_wait spans on the request's trace.
type task struct {
	job       *Job
	i         int
	sc        sim.Scenario
	submitted time.Time
	batched   time.Time
}

// Service is the job queue + batch dispatcher. Create with New, submit
// with Submit/SubmitOne, and shut down with Close.
type Service struct {
	workers      int
	queueDepth   int
	batchSize    int
	jobRetention int
	cache        *resultcache.Cache

	ctx    context.Context // hard-stop scope for dispatch batches
	cancel context.CancelCauseFunc

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*task         // guarded by mu
	closed   bool            // guarded by mu
	jobs     map[string]*Job // guarded by mu
	jobOrder []string        // guarded by mu; submission order, for retention eviction
	nextJob  int64           // guarded by mu

	obsv *obs.Observer

	// obsMu guards the run counters and the stall aggregate as one group:
	// related mutations (a finishing task decrements busy AND increments
	// tasksRun) happen in a single critical section, and Metrics reads
	// every field under the same lock, so a concurrent snapshot is
	// internally consistent — busy never exceeds the pool, tasksRun never
	// lags a decrement (race-tested). Leaf lock: never held while
	// acquiring s.mu or any cache lock.
	obsMu    sync.Mutex
	busy     int64            // guarded by obsMu
	tasksRun int64            // guarded by obsMu
	batches  int64            // guarded by obsMu
	stalls   map[string]int64 // guarded by obsMu

	drained chan struct{} // dispatcher exited
}

// New builds and starts a Service.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 256
	}
	cache := cfg.Cache
	if cache == nil {
		var err error
		if cache, err = resultcache.New(resultcache.Options{}); err != nil {
			return nil, err
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewObserver(obs.ObserverOptions{})
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Service{
		workers:      cfg.Workers,
		queueDepth:   cfg.QueueDepth,
		batchSize:    cfg.BatchSize,
		jobRetention: cfg.JobRetention,
		cache:        cache,
		obsv:         cfg.Obs,
		ctx:          ctx,
		cancel:       cancel,
		jobs:         make(map[string]*Job),
		stalls:       make(map[string]int64),
		drained:      make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	return s, nil
}

// Cache exposes the service's result cache (for tests and metrics).
func (s *Service) Cache() *resultcache.Cache { return s.cache }

// Obs exposes the service's observability state; the HTTP handler serves
// its trace ring and metrics registry.
func (s *Service) Obs() *obs.Observer { return s.obsv }

// observeStage records one stage latency into the shared per-stage
// histogram family. Registry registration is idempotent, so the first
// observation of a stage creates its series.
func (s *Service) observeStage(stage obs.Stage, d time.Duration) {
	if s.obsv == nil {
		return
	}
	s.obsv.Reg.Histogram("rd_stage_duration_us",
		"Request-stage latency in microseconds, by pipeline stage.",
		obs.DefaultLatencyBoundsUS(), obs.L("stage", string(stage))).
		Observe(d.Microseconds())
}

// SubmitOne queues a single scenario.
func (s *Service) SubmitOne(ctx context.Context, sc sim.Scenario) (*Job, error) {
	return s.Submit(ctx, []sim.Scenario{sc})
}

// Submit queues a sweep as one job, all-or-nothing: every scenario is
// validated first (a malformed sweep is rejected whole, before anything
// runs) and the queue either has room for all of them or the submission
// fails with ErrQueueFull. ctx scopes the job's execution — when it is
// canceled, scenarios not yet started fail with the context's error
// instead of running. ctx must be non-nil, per the usual context
// contract; use context.Background() at the call site for a job that
// should never be canceled.
func (s *Service) Submit(ctx context.Context, scs []sim.Scenario) (*Job, error) {
	if len(scs) == 0 {
		return nil, ErrEmptyJob
	}
	for i, sc := range scs {
		if err := sc.Validate(); err != nil {
			return nil, fmt.Errorf("service: scenario %d: %w", i, err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.queue)+len(scs) > s.queueDepth {
		return nil, fmt.Errorf("%w: %d queued + %d submitted > depth %d",
			ErrQueueFull, len(s.queue), len(scs), s.queueDepth)
	}
	s.nextJob++
	job := &Job{
		id:      fmt.Sprintf("job-%06d", s.nextJob),
		ctx:     ctx,
		state:   StateQueued,
		results: make([]*ScenarioResult, len(scs)),
		ready:   make([]chan struct{}, len(scs)),
		done:    make(chan struct{}),
	}
	for i := range job.ready {
		job.ready[i] = make(chan struct{})
	}
	s.jobs[job.id] = job
	s.jobOrder = append(s.jobOrder, job.id)
	s.evictJobsLocked()
	now := s.obsv.Now()
	for i, sc := range scs {
		s.queue = append(s.queue, &task{job: job, i: i, sc: sc, submitted: now})
	}
	s.cond.Broadcast()
	return job, nil
}

// evictJobsLocked drops the oldest finished jobs beyond the retention
// bound. Unfinished jobs are never evicted, whatever their age.
func (s *Service) evictJobsLocked() {
	excess := len(s.jobOrder) - s.jobRetention
	if excess <= 0 {
		return
	}
	kept := s.jobOrder[:0]
	for _, id := range s.jobOrder {
		j := s.jobs[id]
		if excess > 0 && j != nil {
			select {
			case <-j.done:
				delete(s.jobs, id)
				excess--
				continue
			default:
			}
		}
		kept = append(kept, id)
	}
	s.jobOrder = kept
}

// Job looks a job up by ID.
func (s *Service) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
}

// dispatch is the single batching loop: it coalesces up to BatchSize
// queued tasks — across jobs — into one engine.MapCtx call at the
// configured worker count, then records every task's terminal state.
func (s *Service) dispatch() {
	defer close(s.drained)
	for {
		batch := s.nextBatch()
		if batch == nil {
			return
		}
		s.obsMu.Lock()
		s.batches++
		s.obsMu.Unlock()
		_, err := engine.MapCtx(s.ctx, s.workers, len(batch), func(i int) (struct{}, error) {
			s.runTask(batch[i])
			return struct{}{}, nil
		})
		if err != nil {
			// Hard stop (Close deadline): runTask recovers its own panics,
			// so this is cancellation. Everything in the batch that never
			// reached a terminal state fails now, so no waiter hangs.
			for _, t := range batch {
				t.job.finish(t.i, ScenarioResult{Label: t.sc.Label(), Error: err.Error()})
			}
		}
	}
}

// nextBatch blocks until work or shutdown; nil means drained-and-closed.
func (s *Service) nextBatch() []*task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.queue) == 0 {
		return nil
	}
	n := min(s.batchSize, len(s.queue))
	batch := append([]*task(nil), s.queue[:n]...)
	now := s.obsv.Now()
	for _, t := range batch {
		t.batched = now
	}
	s.queue = s.queue[n:]
	if len(s.queue) == 0 {
		// Let the backing array be reclaimed between bursts.
		s.queue = nil
	}
	return batch
}

// runTask executes one scenario through the cache and records its
// terminal state. It never returns an error: per-scenario failures land
// in the scenario's result so one bad row cannot sink a batch that also
// carries other jobs' work.
func (s *Service) runTask(t *task) {
	start := s.obsv.Now()
	s.obsMu.Lock()
	s.busy++
	s.obsMu.Unlock()
	defer func() {
		s.obsMu.Lock()
		s.busy--
		s.tasksRun++
		s.obsMu.Unlock()
	}()
	// The cache already converts runner panics into errors; this recover
	// is the backstop for panics outside the runner (key derivation,
	// telemetry merge), so a batch carrying other jobs' work never dies
	// with this task. finish is idempotent, so a task that already landed
	// a result is unaffected.
	defer func() {
		if r := recover(); r != nil {
			t.job.finish(t.i, ScenarioResult{Label: t.sc.Label(), Error: fmt.Sprintf("service: task panicked: %v", r)})
		}
	}()
	// The request trace rides the job context from the HTTP handler; nil
	// (direct service use, tests) makes every Span call a no-op.
	tr := obs.FromContext(t.job.ctx)
	if !t.submitted.IsZero() && !t.batched.IsZero() {
		tr.Span(obs.StageQueued, t.submitted, t.batched, "")
		s.observeStage(obs.StageQueued, t.batched.Sub(t.submitted))
		tr.Span(obs.StageBatchWait, t.batched, start, "")
		s.observeStage(obs.StageBatchWait, start.Sub(t.batched))
	}
	t.job.markRunning()
	if err := t.job.ctx.Err(); err != nil {
		t.job.finish(t.i, ScenarioResult{Label: t.sc.Label(), Error: context.Cause(t.job.ctx).Error()})
		return
	}
	// Telemetry rides along on real executions only: the collector is
	// attached inside the cache's runner, so hits and deduped followers —
	// which run nothing — aggregate nothing. Attaching a collector never
	// changes the simulated outcome (probes are passive), which keeps
	// cached results byte-identical to direct sim.Run.
	label := t.sc.Label()
	var col *telemetry.Collector
	var simStart, simEnd time.Time
	cacheStart := s.obsv.Now()
	out, cached, err := s.cache.Do(t.job.ctx, t.sc, func(sc sim.Scenario) (sim.Outcome, error) {
		simStart = s.obsv.Now()
		col = telemetry.New(telemetry.Options{})
		sc.Telemetry = col
		o, e := sim.Run(sc)
		simEnd = s.obsv.Now()
		return o, e
	})
	cacheEnd := s.obsv.Now()
	if simStart.IsZero() {
		// Hit or deduped follower: no runner ran, so the whole Do — lookup
		// or the wait on the leader's run — is cache time.
		tr.Span(obs.StageCache, cacheStart, cacheEnd, label)
		s.observeStage(obs.StageCache, cacheEnd.Sub(cacheStart))
	} else {
		tr.Span(obs.StageCache, cacheStart, simStart, label)
		s.observeStage(obs.StageCache, simStart.Sub(cacheStart))
		tr.Span(obs.StageSimulate, simStart, simEnd, label)
		s.observeStage(obs.StageSimulate, simEnd.Sub(simStart))
	}
	if cached {
		tr.AddCacheHit()
	}
	if col != nil && err == nil {
		s.mergeStalls(col)
	}
	res := ScenarioResult{Label: label, Cached: cached}
	if err != nil {
		res.Error = err.Error()
	} else {
		res.Outcome = &out
	}
	t.job.finish(t.i, res)
}

// mergeStalls folds one run's stall-cause attribution into the service-
// wide aggregate exposed by /metrics.
func (s *Service) mergeStalls(col *telemetry.Collector) {
	rep := col.Report()
	s.obsMu.Lock()
	for cause, cycles := range rep.Stalls {
		s.stalls[cause] += cycles
	}
	s.obsMu.Unlock()
}

// Close drains the service: no new submissions are accepted, queued work
// keeps executing, and Close returns once the queue is empty. If ctx
// expires first, the drain hardens into a stop — in-flight scenarios
// finish (the cancellation boundary is the scenario) but everything still
// queued fails with the shutdown cause, and ctx's error is returned.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancel(fmt.Errorf("service: shutdown deadline: %w", context.Cause(ctx)))
		<-s.drained
		return context.Cause(ctx)
	}
}

// QueueMetrics, WorkerMetrics, and JobMetrics are the /metrics sections.
type QueueMetrics struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

type WorkerMetrics struct {
	Configured int   `json:"configured"`
	Busy       int64 `json:"busy"`
	TasksRun   int64 `json:"tasks_run"`
	Batches    int64 `json:"batches"`
	// Utilization is the instantaneous busy fraction of the pool.
	Utilization float64 `json:"utilization"`
}

type JobMetrics struct {
	Submitted int64 `json:"submitted"`
	Active    int   `json:"active"`
	Retained  int   `json:"retained"`
}

// Metrics is the service-wide observability snapshot.
type Metrics struct {
	Version string            `json:"version"`
	Cache   resultcache.Stats `json:"cache"`
	Queue   QueueMetrics      `json:"queue"`
	Workers WorkerMetrics     `json:"workers"`
	Jobs    JobMetrics        `json:"jobs"`
	// Stalls aggregates the stall-cause attribution (idle DATA-bus
	// cycles by cause, see internal/telemetry) over every simulation this
	// service actually executed; cache hits contribute nothing.
	Stalls map[string]int64 `json:"stalls"`
}

// Metrics snapshots the service. Each section is read under its own
// single lock in one step — queue/job state under s.mu, run counters and
// stalls under s.obsMu, cache counters under the cache's stats lock — so
// within a section the numbers are mutually consistent: Busy can never
// exceed the concurrent-task high-water mark, and TasksRun never lags a
// Busy decrement it should include.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	depth := len(s.queue)
	submitted := s.nextJob
	retained := len(s.jobs)
	active := 0
	for _, j := range s.jobs {
		select {
		case <-j.done:
		default:
			active++
		}
	}
	s.mu.Unlock()

	s.obsMu.Lock()
	busy := s.busy
	tasksRun := s.tasksRun
	batches := s.batches
	stalls := make(map[string]int64, len(s.stalls))
	for k, v := range s.stalls {
		stalls[k] = v
	}
	s.obsMu.Unlock()

	return Metrics{
		Version: version.Stamp(),
		Cache:   s.cache.Stats(),
		Queue:   QueueMetrics{Depth: depth, Capacity: s.queueDepth},
		Workers: WorkerMetrics{
			Configured:  s.workers,
			Busy:        busy,
			TasksRun:    tasksRun,
			Batches:     batches,
			Utilization: float64(busy) / float64(s.workers),
		},
		Jobs:   JobMetrics{Submitted: submitted, Active: active, Retained: retained},
		Stalls: stalls,
	}
}
