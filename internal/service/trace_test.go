package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/workload"
)

func traceScenario() sim.Scenario {
	return sim.Scenario{Scheme: addrmap.PI, Mode: sim.SMC, FIFODepth: 32}
}

func kvTrace(t *testing.T) (*tracegen.Program, []workload.TraceAccess) {
	t.Helper()
	prog, err := tracegen.ParseProgram("llm-kvcache:n=4096,ctxrows=16", 7)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := prog.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return prog, accs
}

// The trace-ingestion acceptance criterion: a POSTed trace's outcome is
// byte-identical JSON to a local replay of the same accesses, and
// re-POSTing the identical trace is a cache hit on the same key.
func TestTraceEndpointByteIdentical(t *testing.T) {
	_, cl := startServer(t)
	_, accs := kvTrace(t)
	sc := traceScenario()

	local := sc
	local.Workload = &tracegen.Spec{Accesses: accs}
	want, err := sim.Run(local)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	first, err := cl.Trace(context.Background(), sc, "kv", accs)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(first.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Errorf("posted trace outcome diverges from local replay:\n  local:  %.200s\n  server: %.200s", wantJSON, gotJSON)
	}
	if first.Cached {
		t.Error("first POST reported a cache hit")
	}

	second, err := cl.Trace(context.Background(), sc, "kv", accs)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical re-POST missed the cache")
	}
	if second.Key != first.Key {
		t.Errorf("keys differ across identical POSTs: %s vs %s", first.Key, second.Key)
	}
	again, err := json.Marshal(second.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(gotJSON) {
		t.Error("cached outcome differs from the first")
	}
}

// A simulate of the generator program and a POST of its materialized
// trace are the same cache entry — content addressing across endpoints.
func TestTraceEndpointCrossEndpointDedup(t *testing.T) {
	_, cl := startServer(t)
	prog, accs := kvTrace(t)

	progSc := traceScenario()
	progSc.Workload = &tracegen.Spec{Program: prog}
	viaProgram, err := cl.Simulate(context.Background(), progSc)
	if err != nil {
		t.Fatal(err)
	}
	viaTrace, err := cl.Trace(context.Background(), traceScenario(), prog.Name, accs)
	if err != nil {
		t.Fatal(err)
	}
	if viaTrace.Key != viaProgram.Key {
		t.Errorf("program key %s != posted-trace key %s", viaProgram.Key, viaTrace.Key)
	}
	if !viaTrace.Cached {
		t.Error("posting the program's own trace missed the cache")
	}
}

// The scenario may set the replay depth but must not smuggle a second
// trace source; malformed bodies fail with 400 and a line-naming error.
func TestTraceEndpointRejects(t *testing.T) {
	ts, _ := startServer(t)
	scJSON, err := json.Marshal(traceScenario())
	if err != nil {
		t.Fatal(err)
	}
	sc := string(scJSON)
	line := `{"op":"R","addr":0}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"wrong format",
			`{"format":"rdtrace/v9","accesses":1,"scenario":` + sc + `}` + "\n" + line,
			"unknown trace format"},
		{"truncated body",
			`{"format":"rdtrace/v1","accesses":2,"scenario":` + sc + `}` + "\n" + line,
			"truncated"},
		{"trailing garbage",
			`{"format":"rdtrace/v1","accesses":1,"scenario":` + sc + `}` + "\n" + line + "\n" + line,
			"trailing garbage"},
		{"unknown header field",
			`{"format":"rdtrace/v1","accesses":1,"scenario":` + sc + `,"zap":1}` + "\n" + line,
			"zap"},
		{"inline program",
			`{"format":"rdtrace/v1","accesses":1,"scenario":{"Scheme":1,"Mode":1,"Workload":{"program":{"phases":[{"pattern":"strided"}]}}}}` + "\n" + line,
			"the body is the trace"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/trace", "application/x-ndjson", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %.120s)", c.name, resp.StatusCode, raw)
			continue
		}
		if !strings.Contains(string(raw), c.wantErr) {
			t.Errorf("%s: body %.200s does not mention %q", c.name, raw, c.wantErr)
		}
	}
}
