package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"rdramstream/internal/obs"
	"rdramstream/internal/resultcache"
	"rdramstream/internal/sim"
	"rdramstream/internal/telemetry"
	"rdramstream/internal/version"
)

// Wire types shared by the handler and the client subpackage. The request
// body of POST /v1/simulate is a bare sim.Scenario in JSON (observer
// fields are excluded by their tags); sweeps wrap a scenario list.

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Scenarios []sim.Scenario `json:"scenarios"`
}

// SimulateResponse is the body of POST /v1/simulate.
type SimulateResponse struct {
	JobID string `json:"job_id"`
	// Cached reports whether the outcome was served from the result cache.
	Cached bool `json:"cached"`
	// Key is the scenario's content address in the cache.
	Key     string      `json:"key"`
	Outcome sim.Outcome `json:"outcome"`
}

// SweepLine is one NDJSON line of a POST /v1/sweep response: either a
// per-scenario result (in input order, streamed as each completes) or the
// trailing summary line (Done = true).
type SweepLine struct {
	Index   int          `json:"index"`
	Label   string       `json:"label,omitempty"`
	Cached  bool         `json:"cached,omitempty"`
	Outcome *sim.Outcome `json:"outcome,omitempty"`
	Error   string       `json:"error,omitempty"`

	Done      bool   `json:"done,omitempty"`
	JobID     string `json:"job_id,omitempty"`
	Total     int    `json:"total,omitempty"`
	CacheHits int    `json:"cache_hits,omitempty"`
	Failed    int    `json:"failed,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// RegisterRequest is the body of POST /v1/fabric/register (served by the
// fabric coordinator, sent by workers via client.RegisterWorker).
//
// rdlint:wire — fabric registration wire format.
type RegisterRequest struct {
	// Addr is the worker's advertised base URL, e.g. "http://10.0.0.7:8347".
	Addr string `json:"addr"`
}

// CacheEntryResponse is the body of GET /v1/cache/{key}: one result-
// cache entry looked up by its content address (the peer tier of the
// layered cache). A miss is a 404.
//
// rdlint:wire — peer cache-probe wire format.
type CacheEntryResponse struct {
	Key     string      `json:"key"`
	Outcome sim.Outcome `json:"outcome"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// HandlerOptions configures the optional surfaces of the HTTP handler.
type HandlerOptions struct {
	// PProf mounts net/http/pprof under /debug/pprof/ when true. Off by
	// default: profiling endpoints expose process internals and belong
	// behind an explicit flag (rdserved -pprof).
	PProf bool
}

// NewHandler wires the service's HTTP API with default options:
//
//	POST /v1/simulate      one scenario, synchronous JSON response
//	POST /v1/sweep         scenario list, NDJSON stream in input order
//	POST /v1/trace         NDJSON trace (header + access lines), replayed
//	                       under the header's scenario; response matches
//	                       /v1/simulate
//	GET  /v1/jobs/{id}     job status snapshot
//	GET  /v1/requests/{id} one request trace (spans, status, counts)
//	GET  /debug/requests   recent traces (?format=json|jsonl|chrome)
//	GET  /healthz          liveness + version stamp
//	GET  /metrics          Prometheus text exposition (?format=json for
//	                       the service.Metrics JSON snapshot)
//
// Every API request is traced: the middleware opens a Trace (honoring a
// client X-Request-ID), threads it down the job context, records the
// route/status counter and request-latency histogram, and echoes the
// request ID back in the X-Request-ID response header.
func NewHandler(s *Service) http.Handler {
	return NewHandlerWith(s, HandlerOptions{})
}

// NewHandlerWith is NewHandler with explicit options.
func NewHandlerWith(s *Service, opt HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCachePeek)
	mux.HandleFunc("GET /v1/requests/{id}", s.handleRequest)
	mux.HandleFunc("GET /debug/requests", s.handleRequests)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if opt.PProf {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// routeLabel normalizes a request to a bounded route-label set, so
// arbitrary client paths cannot mint unbounded metric series.
func routeLabel(r *http.Request) string {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/simulate":
		return "POST /v1/simulate"
	case r.Method == http.MethodPost && r.URL.Path == "/v1/sweep":
		return "POST /v1/sweep"
	case r.Method == http.MethodPost && r.URL.Path == "/v1/trace":
		return "POST /v1/trace"
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
		return "GET /v1/jobs/{id}"
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/requests/"):
		return "GET /v1/requests/{id}"
	case r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/cache/"):
		return "GET /v1/cache/{key}"
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		return "GET /healthz"
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		return "GET /metrics"
	case strings.HasPrefix(r.URL.Path, "/debug/"):
		return "debug"
	default:
		return "other"
	}
}

// statusWriter captures the response status code. It preserves
// http.Flusher — the sweep handler streams NDJSON through it — by
// implementing Flush itself rather than hiding the underlying writer's.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// traced reports whether a route gets a request trace. Introspection
// endpoints are counted in the HTTP metrics but not traced: a scrape
// every few seconds would churn the ring out of useful request traces.
func traced(route string) bool {
	switch route {
	case "GET /metrics", "GET /healthz", "GET /v1/requests/{id}", "GET /v1/cache/{key}", "debug", "other":
		return false
	}
	return true
}

// instrument wraps the mux with per-request observability: a Trace on
// the context for API routes, the rd_http_requests_total counter, and
// the rd_http_request_duration_us histogram for every route.
func (s *Service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		o := s.obsv
		if o == nil {
			next.ServeHTTP(w, r)
			return
		}
		route := routeLabel(r)
		start := o.Now()
		sw := &statusWriter{ResponseWriter: w}
		var tr *obs.Trace
		if traced(route) {
			tr = o.NewTrace(r.Header.Get("X-Request-ID"), route)
			w.Header().Set("X-Request-ID", tr.ID())
			r = r.WithContext(obs.NewContext(r.Context(), tr))
		}
		next.ServeHTTP(sw, r)
		end := o.Now()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		tr.SetStatus(sw.status)
		tr.Finish()
		o.Reg.Counter("rd_http_requests_total",
			"HTTP requests by route and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(sw.status))).Inc()
		o.Reg.Histogram("rd_http_request_duration_us",
			"End-to-end HTTP request latency in microseconds, by route.",
			obs.DefaultLatencyBoundsUS(), obs.L("route", route)).
			Observe(end.Sub(start).Microseconds())
	})
}

// writeJSON emits one JSON body. Marshal errors cannot occur for our wire
// types; a broken connection is the client's problem.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// failRequest records the error on the request's trace (when one is
// attached) and writes the error response.
func failRequest(w http.ResponseWriter, r *http.Request, status int, err error) {
	obs.FromContext(r.Context()).SetError(err.Error())
	writeError(w, status, err)
}

// submitStatus maps a Submit failure to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// decodeStrict decodes one JSON body, rejecting unknown fields so a typo
// in a scenario field fails loudly instead of silently simulating the
// default.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var sc sim.Scenario
	if err := decodeStrict(r, &sc); err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	key, err := resultcache.Key(sc)
	if err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	tr := obs.FromContext(r.Context())
	tr.AddScenarios(1)
	job, err := s.SubmitOne(r.Context(), sc)
	if err != nil {
		failRequest(w, r, submitStatus(err), err)
		return
	}
	// The stream span covers the response phase: the wait for the result
	// (which overlaps the scenario's queued/cache/simulate spans) plus
	// the body write.
	streamStart := s.obsv.Now()
	res, err := job.WaitResult(r.Context(), 0)
	if err != nil {
		failRequest(w, r, http.StatusServiceUnavailable, err)
		return
	}
	if res.Error != "" {
		failRequest(w, r, http.StatusUnprocessableEntity, errors.New(res.Error))
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		JobID: job.ID(), Cached: res.Cached, Key: key, Outcome: *res.Outcome,
	})
	streamEnd := s.obsv.Now()
	tr.Span(obs.StageStream, streamStart, streamEnd, "")
	s.observeStage(obs.StageStream, streamEnd.Sub(streamStart))
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		failRequest(w, r, http.StatusBadRequest, err)
		return
	}
	tr := obs.FromContext(r.Context())
	tr.AddScenarios(len(req.Scenarios))
	job, err := s.Submit(r.Context(), req.Scenarios)
	if err != nil {
		failRequest(w, r, submitStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	streamStart := s.obsv.Now()
	for i := 0; i < len(req.Scenarios); i++ {
		res, err := job.WaitResult(r.Context(), i)
		if err != nil {
			// The client went away (or the server is hard-stopping) while
			// we streamed; nothing sensible left to send.
			tr.SetError(err.Error())
			return
		}
		enc.Encode(SweepLine{
			Index: res.Index, Label: res.Label, Cached: res.Cached,
			Outcome: res.Outcome, Error: res.Error,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
	st := job.Status()
	enc.Encode(SweepLine{
		Done: true, JobID: job.ID(), Total: st.Total,
		CacheHits: st.CacheHits, Failed: st.Failed,
	})
	if flusher != nil {
		flusher.Flush()
	}
	streamEnd := s.obsv.Now()
	tr.Span(obs.StageStream, streamStart, streamEnd, "")
	s.observeStage(obs.StageStream, streamEnd.Sub(streamStart))
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	job, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

// handleCachePeek answers peer cache probes: a raw content key, looked
// up in this server's local tiers only (memory, then disk — never its
// own peer tier, so probes cannot forward in a loop). Misses are 404;
// no hit/miss counters move, so peer probing never skews serving
// metrics.
func (s *Service) handleCachePeek(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimSpace(r.PathValue("key"))
	out, ok := s.cache.Peek(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: no cached outcome for key %q", key))
		return
	}
	writeJSON(w, http.StatusOK, CacheEntryResponse{Key: key, Outcome: out})
}

// handleRequest serves one request trace by ID.
func (s *Service) handleRequest(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	tr, ok := s.obsv.Ring.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown request %q (ring holds the most recent %d)", id, obs.DefaultRingSize))
		return
	}
	writeJSON(w, http.StatusOK, tr.Record())
}

// handleRequests serves the recent-trace ring, oldest first:
// ?format=json (default) as a JSON array of trace records, ?format=jsonl
// as telemetry-event lines, ?format=chrome as a Chrome/Perfetto trace
// document — the same exporters that render simulation telemetry.
func (s *Service) handleRequests(w http.ResponseWriter, r *http.Request) {
	recs := s.obsv.Ring.Recent()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, recs)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		telemetry.WriteJSONL(w, obs.Events(recs))
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		telemetry.WriteChromeTrace(w, obs.Events(recs))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: unknown trace format %q (want json, jsonl, or chrome)", format))
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Version: version.Stamp()})
}

// handleMetrics serves the Prometheus text exposition by default and the
// service.Metrics JSON snapshot at ?format=json (the pre-exposition wire
// format, unchanged for existing consumers). Both views derive from the
// same Metrics() snapshot at scrape time, so they always agree.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, m)
		return
	}
	s.publishSnapshot(m)
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	s.obsv.Reg.WritePrometheus(w)
}

// publishSnapshot mirrors one Metrics snapshot into the Prometheus
// registry as gauges and snapshot counters. The live series (HTTP
// counters, latency histograms) accumulate in the registry directly;
// everything whose source of truth is another subsystem's consistent
// snapshot is pushed here at scrape time.
func (s *Service) publishSnapshot(m Metrics) {
	reg := s.obsv.Reg
	reg.SetCounter("rd_cache_hits_total", "Result-cache requests answered from memory.", float64(m.Cache.Hits))
	reg.SetCounter("rd_cache_misses_total", "Result-cache requests that ran a simulation.", float64(m.Cache.Misses))
	reg.SetCounter("rd_cache_disk_hits_total", "Result-cache lookups rescued by the disk store (subset of hits).", float64(m.Cache.DiskHits))
	reg.SetCounter("rd_cache_peer_hits_total", "Result-cache lookups rescued by the peer tier (subset of hits).", float64(m.Cache.PeerHits))
	reg.SetCounter("rd_cache_dedups_total", "Requests that piggybacked on an identical in-flight simulation.", float64(m.Cache.Dedups))
	reg.SetCounter("rd_cache_evictions_total", "LRU entries displaced by newer ones.", float64(m.Cache.Evictions))
	reg.SetCounter("rd_cache_disk_errors_total", "Best-effort disk reads/writes that failed.", float64(m.Cache.DiskErrors))
	reg.SetGauge("rd_cache_entries", "Current in-memory result-cache entries.", float64(m.Cache.Entries))
	reg.SetGauge("rd_queue_depth", "Scenarios queued but not yet dispatched.", float64(m.Queue.Depth))
	reg.SetGauge("rd_queue_capacity", "Configured queue depth bound.", float64(m.Queue.Capacity))
	reg.SetGauge("rd_workers_busy", "Worker-pool tasks executing right now.", float64(m.Workers.Busy))
	reg.SetGauge("rd_workers_configured", "Configured worker-pool size.", float64(m.Workers.Configured))
	reg.SetGauge("rd_worker_utilization", "Instantaneous busy fraction of the worker pool.", m.Workers.Utilization)
	reg.SetCounter("rd_tasks_run_total", "Scenario tasks executed by the worker pool.", float64(m.Workers.TasksRun))
	reg.SetCounter("rd_batches_total", "Dispatcher batches handed to the engine.", float64(m.Workers.Batches))
	reg.SetCounter("rd_jobs_submitted_total", "Jobs accepted by Submit.", float64(m.Jobs.Submitted))
	reg.SetGauge("rd_jobs_active", "Jobs not yet finished.", float64(m.Jobs.Active))
	reg.SetGauge("rd_jobs_retained", "Finished and active jobs still queryable.", float64(m.Jobs.Retained))
	causes := make([]string, 0, len(m.Stalls))
	for cause := range m.Stalls {
		causes = append(causes, cause)
	}
	sort.Strings(causes)
	for _, cause := range causes {
		reg.SetCounter("rd_sim_stall_cycles_total",
			"Idle DATA-bus cycles attributed by stall cause, summed over executed simulations.",
			float64(m.Stalls[cause]), obs.L("cause", cause))
	}
}
