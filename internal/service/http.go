package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"rdramstream/internal/resultcache"
	"rdramstream/internal/sim"
	"rdramstream/internal/version"
)

// Wire types shared by the handler and the client subpackage. The request
// body of POST /v1/simulate is a bare sim.Scenario in JSON (observer
// fields are excluded by their tags); sweeps wrap a scenario list.

// SweepRequest is the body of POST /v1/sweep.
type SweepRequest struct {
	Scenarios []sim.Scenario `json:"scenarios"`
}

// SimulateResponse is the body of POST /v1/simulate.
type SimulateResponse struct {
	JobID string `json:"job_id"`
	// Cached reports whether the outcome was served from the result cache.
	Cached bool `json:"cached"`
	// Key is the scenario's content address in the cache.
	Key     string      `json:"key"`
	Outcome sim.Outcome `json:"outcome"`
}

// SweepLine is one NDJSON line of a POST /v1/sweep response: either a
// per-scenario result (in input order, streamed as each completes) or the
// trailing summary line (Done = true).
type SweepLine struct {
	Index   int          `json:"index"`
	Label   string       `json:"label,omitempty"`
	Cached  bool         `json:"cached,omitempty"`
	Outcome *sim.Outcome `json:"outcome,omitempty"`
	Error   string       `json:"error,omitempty"`

	Done      bool   `json:"done,omitempty"`
	JobID     string `json:"job_id,omitempty"`
	Total     int    `json:"total,omitempty"`
	CacheHits int    `json:"cache_hits,omitempty"`
	Failed    int    `json:"failed,omitempty"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
}

// errorResponse is every non-2xx body.
type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler wires the service's HTTP API:
//
//	POST /v1/simulate  one scenario, synchronous JSON response
//	POST /v1/sweep     scenario list, NDJSON stream in input order
//	GET  /v1/jobs/{id} job status snapshot
//	GET  /healthz      liveness + version stamp
//	GET  /metrics      cache, queue, worker, job, and stall aggregates
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// writeJSON emits one JSON body. Marshal errors cannot occur for our wire
// types; a broken connection is the client's problem.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// submitStatus maps a Submit failure to its HTTP status.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// decodeStrict decodes one JSON body, rejecting unknown fields so a typo
// in a scenario field fails loudly instead of silently simulating the
// default.
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}

func (s *Service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var sc sim.Scenario
	if err := decodeStrict(r, &sc); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := resultcache.Key(sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.SubmitOne(r.Context(), sc)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	res, err := job.WaitResult(r.Context(), 0)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if res.Error != "" {
		writeError(w, http.StatusUnprocessableEntity, errors.New(res.Error))
		return
	}
	writeJSON(w, http.StatusOK, SimulateResponse{
		JobID: job.ID(), Cached: res.Cached, Key: key, Outcome: *res.Outcome,
	})
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decodeStrict(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.Submit(r.Context(), req.Scenarios)
	if err != nil {
		writeError(w, submitStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := 0; i < len(req.Scenarios); i++ {
		res, err := job.WaitResult(r.Context(), i)
		if err != nil {
			// The client went away (or the server is hard-stopping) while
			// we streamed; nothing sensible left to send.
			return
		}
		enc.Encode(SweepLine{
			Index: res.Index, Label: res.Label, Cached: res.Cached,
			Outcome: res.Outcome, Error: res.Error,
		})
		if flusher != nil {
			flusher.Flush()
		}
	}
	st := job.Status()
	enc.Encode(SweepLine{
		Done: true, JobID: job.ID(), Total: st.Total,
		CacheHits: st.CacheHits, Failed: st.Failed,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimSpace(r.PathValue("id"))
	job, err := s.Job(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Version: version.Stamp()})
}

func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
