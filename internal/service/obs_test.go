package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdramstream/internal/obs"
	"rdramstream/internal/service"
	"rdramstream/internal/sim"
)

func postSimulate(t *testing.T, url string, sc sim.Scenario, requestID string) *http.Response {
	t.Helper()
	body, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-ID", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// getTrace polls GET /v1/requests/{id} until the trace reports Done —
// the middleware finishes it after the handler returns, which can land
// just after the client has the response body.
func getTrace(t *testing.T, url, id string) obs.TraceRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/requests/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/requests/%s: status %d: %s", id, resp.StatusCode, raw)
		}
		var rec obs.TraceRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			t.Fatalf("decoding trace %s: %v", raw, err)
		}
		if rec.Done {
			return rec
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never finished: %+v", id, rec)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRequestTracingEndToEnd(t *testing.T) {
	ts, _ := startServer(t)

	resp := postSimulate(t, ts.URL, scenario(64), "trace-me-1")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-1" {
		t.Errorf("X-Request-ID echoed as %q, want trace-me-1", got)
	}

	rec := getTrace(t, ts.URL, "trace-me-1")
	if rec.Route != "POST /v1/simulate" || rec.Status != http.StatusOK {
		t.Errorf("trace route/status = %q/%d", rec.Route, rec.Status)
	}
	if rec.Scenarios != 1 || rec.CacheHits != 0 {
		t.Errorf("trace counts = %d scenarios, %d cache hits; want 1, 0", rec.Scenarios, rec.CacheHits)
	}
	if rec.DurationUS <= 0 {
		t.Errorf("trace duration = %d", rec.DurationUS)
	}
	stages := map[string]bool{}
	for _, sp := range rec.Spans {
		stages[sp.Stage] = true
		if sp.StartUS < 0 || sp.EndUS < sp.StartUS {
			t.Errorf("span %+v has bad bounds", sp)
		}
	}
	for _, want := range []string{"queued", "batch_wait", "cache", "simulate", "stream"} {
		if !stages[want] {
			t.Errorf("miss trace has no %q span (spans: %+v)", want, rec.Spans)
		}
	}

	// A repeat of the same scenario is a cache hit: its trace records the
	// hit and never enters the simulate stage.
	resp = postSimulate(t, ts.URL, scenario(64), "trace-me-2")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec = getTrace(t, ts.URL, "trace-me-2")
	if rec.CacheHits != 1 {
		t.Errorf("hit trace records %d cache hits, want 1", rec.CacheHits)
	}
	for _, sp := range rec.Spans {
		if sp.Stage == "simulate" {
			t.Errorf("cache-hit trace carries a simulate span: %+v", sp)
		}
	}

	// Generated IDs: no header means the server assigns one.
	resp = postSimulate(t, ts.URL, scenario(128), "")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	gen := resp.Header.Get("X-Request-ID")
	if !strings.HasPrefix(gen, "req-") {
		t.Errorf("generated request ID = %q, want req- prefix", gen)
	}
	getTrace(t, ts.URL, gen)

	// Unknown IDs are 404.
	r404, err := http.Get(ts.URL + "/v1/requests/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r404.Body)
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown request id: status %d, want 404", r404.StatusCode)
	}
}

func TestDebugRequestsFormats(t *testing.T) {
	ts, cl := startServer(t)
	if _, err := cl.Simulate(context.Background(), scenario(64)); err != nil {
		t.Fatal(err)
	}

	get := func(q string) (int, []byte, string) {
		resp, err := http.Get(ts.URL + "/debug/requests" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, raw, resp.Header.Get("Content-Type")
	}

	status, raw, _ := get("")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", status)
	}
	var recs []obs.TraceRecord
	if err := json.Unmarshal(raw, &recs); err != nil || len(recs) == 0 {
		t.Fatalf("trace list = %s (err %v)", raw, err)
	}

	status, raw, ct := get("?format=jsonl")
	if status != http.StatusOK || !strings.Contains(ct, "ndjson") {
		t.Errorf("jsonl: status %d content-type %q", status, ct)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Errorf("jsonl line %q: %v", line, err)
		}
	}

	status, raw, _ = get("?format=chrome")
	if status != http.StatusOK {
		t.Errorf("chrome: status %d", status)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Errorf("chrome trace = %s (err %v)", raw, err)
	}

	if status, _, _ = get("?format=bogus"); status != http.StatusBadRequest {
		t.Errorf("bogus format: status %d, want 400", status)
	}
}

func TestMetricsPrometheusExposition(t *testing.T) {
	ts, cl := startServer(t)
	for i := 0; i < 2; i++ {
		if _, err := cl.Simulate(context.Background(), scenario(64)); err != nil {
			t.Fatal(err)
		}
	}

	text, err := cl.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := obs.CheckExposition(text); err != nil {
		t.Fatalf("exposition invalid after %d samples: %v\n%s", n, err, text)
	}
	for _, want := range []string{
		"# TYPE rd_cache_hits_total counter",
		"rd_cache_hits_total 1",
		"rd_cache_misses_total 1",
		`rd_http_requests_total{code="200",route="POST /v1/simulate"} 2`,
		"# TYPE rd_http_request_duration_us histogram",
		`rd_stage_duration_us_bucket{stage="simulate",le="+Inf"} 1`,
		"rd_workers_configured 2",
		`rd_sim_stall_cycles_total{cause=`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// The JSON view and the exposition come from the same snapshot shape:
	// the JSON hit counter must equal the exposition's.
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Errorf("JSON view = %+v, want 1 hit + 1 miss", m.Cache)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want exposition format 0.0.4", ct)
	}
}

func TestPProfGatedByOption(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()

	off := httptest.NewServer(service.NewHandler(svc))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without the option")
	}

	on := httptest.NewServer(service.NewHandlerWith(svc, service.HandlerOptions{PProf: true}))
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with option on: status %d", resp.StatusCode)
	}
}

// TestServiceMetricsConsistentUnderRace submits work from many
// goroutines while a poller snapshots Metrics, asserting every snapshot
// is internally consistent: Busy stays within the configured pool, the
// queue within its capacity, Active within Retained, and counters never
// run backward. CI runs this under -race.
func TestServiceMetricsConsistentUnderRace(t *testing.T) {
	const workers = 2
	svc, err := service.New(service.Config{Workers: workers, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Close(ctx)
	}()

	stop := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		var lastTasks, lastBatches int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := svc.Metrics()
			if m.Workers.Busy < 0 || m.Workers.Busy > workers {
				t.Errorf("busy = %d outside [0, %d]", m.Workers.Busy, workers)
				return
			}
			if m.Queue.Depth > m.Queue.Capacity {
				t.Errorf("queue depth %d > capacity %d", m.Queue.Depth, m.Queue.Capacity)
				return
			}
			if m.Jobs.Active > m.Jobs.Retained {
				t.Errorf("active jobs %d > retained %d", m.Jobs.Active, m.Jobs.Retained)
				return
			}
			if m.Workers.TasksRun < lastTasks || m.Workers.Batches < lastBatches {
				t.Errorf("counters ran backward: tasks %d -> %d, batches %d -> %d",
					lastTasks, m.Workers.TasksRun, lastBatches, m.Workers.Batches)
				return
			}
			lastTasks, lastBatches = m.Workers.TasksRun, m.Workers.Batches
		}
	}()

	const goroutines, rounds = 4, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				sc := scenario(64 << (g % 3))
				job, err := svc.SubmitOne(context.Background(), sc)
				if err != nil {
					t.Error(err)
					return
				}
				if err := job.Wait(context.Background()); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pollWG.Wait()

	m := svc.Metrics()
	if want := int64(goroutines * rounds); m.Workers.TasksRun != want {
		t.Errorf("tasks run = %d, want %d", m.Workers.TasksRun, want)
	}
	if m.Workers.Busy != 0 {
		t.Errorf("busy = %d at quiescence", m.Workers.Busy)
	}
	total := m.Cache.Hits + m.Cache.Misses + m.Cache.Dedups
	if total != int64(goroutines*rounds) {
		t.Errorf("cache classified %d of %d tasks", total, goroutines*rounds)
	}
}
