// Package client is the Go client for the rdserved HTTP API
// (internal/service): submit scenarios and sweeps to a running server
// instead of simulating in-process, sharing its result cache with every
// other client. cmd/sweep's -server flag is built on it, and the fabric
// coordinator (internal/fabric) uses it as the transport to its workers.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"rdramstream/internal/service"
	"rdramstream/internal/sim"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/workload"
)

// StatusError is the typed error for every non-2xx server response: it
// carries the HTTP status code so callers (retry loops, circuit
// breakers) can classify failures instead of parsing error strings.
// Match with errors.As.
type StatusError struct {
	// Code is the HTTP status code (e.g. 429, 503).
	Code int
	// Status is the full status line text ("503 Service Unavailable").
	Status string
	// Message is the server's error body (the "error" field of the JSON
	// body when present, the raw body otherwise).
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server %s: %s", e.Status, e.Message)
}

// Temporary reports whether the failure is worth retrying: 429 (shed by
// admission control) and 5xx (overload, shutdown, transient server
// faults) are; 4xx request errors are not.
func (e *StatusError) Temporary() bool {
	return e.Code == http.StatusTooManyRequests || e.Code >= 500
}

// IsStatus reports whether err carries the given HTTP status code.
func IsStatus(err error, code int) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == code
}

// Client talks to one rdserved instance. The zero HTTPClient means
// http.DefaultClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8347".
	BaseURL string
	// HTTPClient, when non-nil, overrides http.DefaultClient (tests,
	// timeouts, transports).
	HTTPClient *http.Client
	// Timeout, when positive, bounds each request end to end — for
	// streaming calls (Sweep) it covers the whole stream, not just the
	// first byte. It composes with the caller's ctx: whichever deadline
	// is earlier wins.
	Timeout time.Duration
}

// New builds a client for a server root URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// reqCtx applies the client's per-request timeout to ctx.
func (c *Client) reqCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.Timeout > 0 {
		return context.WithTimeout(ctx, c.Timeout)
	}
	return ctx, func() {}
}

// apiError decodes the server's error body into a *StatusError.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	se := &StatusError{Code: resp.StatusCode, Status: resp.Status}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		se.Message = e.Error
	} else {
		se.Message = string(bytes.TrimSpace(body))
	}
	return se
}

func (c *Client) post(ctx context.Context, path string, body any) (*http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.http().Do(req)
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Simulate runs one scenario on the server and returns its response
// (outcome, cache key, and whether it was a cache hit).
func (c *Client) Simulate(ctx context.Context, sc sim.Scenario) (service.SimulateResponse, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var out service.SimulateResponse
	resp, err := c.post(ctx, "/v1/simulate", sc)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: decoding response: %w", err)
	}
	return out, nil
}

// Trace posts an NDJSON trace body (POST /v1/trace): a header carrying
// the scenario, then one line per access. The server replays the trace
// under the scenario and answers like Simulate — the cache key is the
// trace's content digest, so posting the same trace twice is a hit.
// The scenario's Workload must not carry an inline program or access
// list (it may set Outstanding).
func (c *Client) Trace(ctx context.Context, sc sim.Scenario, name string, accs []workload.TraceAccess) (service.SimulateResponse, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var out service.SimulateResponse
	var body bytes.Buffer
	hdr, err := json.Marshal(service.TraceHeader{
		Format: tracegen.FormatV1, Name: name, Accesses: len(accs), Scenario: sc,
	})
	if err != nil {
		return out, fmt.Errorf("client: encoding trace header: %w", err)
	}
	body.Write(hdr)
	body.WriteByte('\n')
	for _, a := range accs {
		op := "R"
		if a.Write {
			op = "W"
		}
		ln, err := json.Marshal(tracegen.Line{Op: op, Addr: a.Addr})
		if err != nil {
			return out, fmt.Errorf("client: encoding trace line: %w", err)
		}
		body.Write(ln)
		body.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/trace", bytes.NewReader(body.Bytes()))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http().Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("client: decoding response: %w", err)
	}
	return out, nil
}

// Sweep streams a scenario list through the server. Each per-scenario
// line arrives in input order and is handed to fn as it lands (fn may be
// nil); the trailing summary line is returned. A non-nil error from fn
// aborts the stream.
func (c *Client) Sweep(ctx context.Context, scs []sim.Scenario, fn func(service.SweepLine) error) (service.SweepLine, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	var summary service.SweepLine
	resp, err := c.post(ctx, "/v1/sweep", service.SweepRequest{Scenarios: scs})
	if err != nil {
		return summary, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return summary, apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var l service.SweepLine
		if err := json.Unmarshal(line, &l); err != nil {
			return summary, fmt.Errorf("client: decoding stream line: %w", err)
		}
		if l.Done {
			summary = l
			return summary, nil
		}
		if fn != nil {
			if err := fn(l); err != nil {
				return summary, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return summary, fmt.Errorf("client: reading stream: %w", err)
	}
	return summary, fmt.Errorf("client: stream ended without a summary line (server stopped mid-sweep?)")
}

// SweepOutcomes runs a sweep and collects the outcomes in input order —
// a drop-in remote replacement for sim.RunAll. Any per-scenario error
// aborts with that scenario's error, mirroring local sweep semantics.
func (c *Client) SweepOutcomes(ctx context.Context, scs []sim.Scenario) ([]sim.Outcome, error) {
	outs := make([]sim.Outcome, 0, len(scs))
	_, err := c.Sweep(ctx, scs, func(l service.SweepLine) error {
		if l.Error != "" {
			return fmt.Errorf("client: scenario %d (%s): %s", l.Index, l.Label, l.Error)
		}
		if l.Outcome == nil {
			return fmt.Errorf("client: scenario %d (%s): result line carries no outcome", l.Index, l.Label)
		}
		outs = append(outs, *l.Outcome)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// Job fetches a job status snapshot.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) (service.HealthResponse, error) {
	var h service.HealthResponse
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}

// RegisterWorker announces a worker's advertised base URL to a fabric
// coordinator (POST /v1/fabric/register). Workers call it periodically:
// registration is idempotent and doubles as a liveness refresh.
func (c *Client) RegisterWorker(ctx context.Context, addr string) error {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	resp, err := c.post(ctx, "/v1/fabric/register", service.RegisterRequest{Addr: addr})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	return nil
}

// CachedOutcome asks the server's result cache for a key without running
// anything (GET /v1/cache/{key}) — the peer tier of the layered cache. A
// miss returns ok=false with a nil error; transport failures and non-404
// statuses return the error.
func (c *Client) CachedOutcome(ctx context.Context, key string) (sim.Outcome, bool, error) {
	var out service.CacheEntryResponse
	err := c.getJSON(ctx, "/v1/cache/"+key, &out)
	if err != nil {
		if IsStatus(err, http.StatusNotFound) {
			return sim.Outcome{}, false, nil
		}
		return sim.Outcome{}, false, err
	}
	return out.Outcome, true, nil
}

// Metrics fetches the server's observability snapshot (the JSON view of
// GET /metrics; the bare path serves Prometheus text exposition).
func (c *Client) Metrics(ctx context.Context) (service.Metrics, error) {
	var m service.Metrics
	err := c.getJSON(ctx, "/metrics?format=json", &m)
	return m, err
}

// MetricsText fetches the Prometheus text exposition of GET /metrics.
func (c *Client) MetricsText(ctx context.Context) ([]byte, error) {
	ctx, cancel := c.reqCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}
