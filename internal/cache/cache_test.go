package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeWords: 0, LineWords: 4, Ways: 1},
		{SizeWords: 2048, LineWords: 0, Ways: 1},
		{SizeWords: 2046, LineWords: 4, Ways: 1},
		{SizeWords: 2048, LineWords: 4, Ways: 0},
		{SizeWords: 2048, LineWords: 4, Ways: 3},
		{SizeWords: 8, LineWords: 4, Ways: 4},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
	c := DefaultConfig()
	if c.Lines() != 512 || c.Sets() != 512 {
		t.Errorf("lines/sets = %d/%d", c.Lines(), c.Sets())
	}
}

func TestHitAfterFill(t *testing.T) {
	c, _ := New(DefaultConfig())
	if r := c.Access(10, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(10, false); !r.Hit {
		t.Error("second access missed")
	}
	if hr := c.HitRate(); hr != 0.5 {
		t.Errorf("hit rate %v", hr)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two lines mapping to the same set of a direct-mapped cache evict
	// each other on alternation.
	c, _ := New(Config{SizeWords: 64, LineWords: 4, Ways: 1}) // 16 sets
	c.Access(0, true)                                         // dirty
	r := c.Access(16, false)                                  // same set (16 % 16 == 0)
	if r.Hit {
		t.Fatal("conflicting line hit")
	}
	if r.Evicted != 0 || !r.EvictedDirty {
		t.Errorf("evicted %d dirty=%v, want 0/true", r.Evicted, r.EvictedDirty)
	}
	if r := c.Access(0, false); r.Hit {
		t.Error("line 0 survived conflict eviction")
	}
}

func TestAssociativityAbsorbsConflicts(t *testing.T) {
	c2, _ := New(Config{SizeWords: 64, LineWords: 4, Ways: 2}) // 8 sets
	c2.Access(0, false)
	c2.Access(8, false) // same set, second way
	if r := c2.Access(0, false); !r.Hit {
		t.Error("2-way cache should hold both conflicting lines")
	}
}

func TestLRUReplacement(t *testing.T) {
	c, _ := New(Config{SizeWords: 32, LineWords: 4, Ways: 2}) // 4 sets
	c.Access(0, false)                                        // set 0, way A
	c.Access(4, false)                                        // set 0, way B
	c.Access(0, false)                                        // touch 0: 4 becomes LRU
	r := c.Access(8, false)
	if r.Evicted != 4 {
		t.Errorf("evicted %d, want the LRU line 4", r.Evicted)
	}
	if rr := c.Access(0, false); !rr.Hit {
		t.Error("MRU line 0 was evicted")
	}
}

func TestFlushDirty(t *testing.T) {
	c, _ := New(Config{SizeWords: 64, LineWords: 4, Ways: 2})
	c.Access(3, true)
	c.Access(5, false)
	c.Access(9, true)
	dirty := c.FlushDirty()
	if len(dirty) != 2 {
		t.Fatalf("dirty lines = %v", dirty)
	}
	seen := map[int64]bool{}
	for _, l := range dirty {
		seen[l] = true
	}
	if !seen[3] || !seen[9] {
		t.Errorf("dirty set %v, want {3,9}", seen)
	}
	if again := c.FlushDirty(); len(again) != 0 {
		t.Errorf("second flush returned %v", again)
	}
}

func TestStatsCounters(t *testing.T) {
	c, _ := New(Config{SizeWords: 16, LineWords: 4, Ways: 1}) // 4 sets
	c.Access(0, true)
	c.Access(4, true)  // evicts 0 (dirty)
	c.Access(0, false) // evicts 4 (dirty)
	hits, misses, ev, dirtyEv := c.Stats()
	if hits != 0 || misses != 3 || ev != 2 || dirtyEv != 2 {
		t.Errorf("stats = %d/%d/%d/%d", hits, misses, ev, dirtyEv)
	}
	empty, _ := New(DefaultConfig())
	if empty.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

// TestEvictionRoundTripProperty: whatever line is reported evicted must be
// a line that was previously inserted and maps to the same set as the
// access that evicted it.
func TestEvictionRoundTripProperty(t *testing.T) {
	cfg := Config{SizeWords: 128, LineWords: 4, Ways: 2} // 16 sets
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, _ := New(cfg)
		inserted := map[int64]bool{}
		for i := 0; i < 500; i++ {
			line := int64(rng.Intn(200))
			r := c.Access(line, rng.Intn(2) == 0)
			if r.Evicted >= 0 {
				if !inserted[r.Evicted] {
					return false // evicted something never inserted
				}
				if r.Evicted%int64(cfg.Sets()) != line%int64(cfg.Sets()) {
					return false // evicted from a different set
				}
				delete(inserted, r.Evicted)
			}
			inserted[line] = true
			if len(inserted) > cfg.Lines() {
				return false // more resident lines than capacity
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestWorkingSetFitsNoEvictions: a working set no larger than the cache
// never evicts once warm.
func TestWorkingSetFitsNoEvictions(t *testing.T) {
	c, _ := New(Config{SizeWords: 256, LineWords: 4, Ways: 4}) // 64 lines
	for pass := 0; pass < 3; pass++ {
		for line := int64(0); line < 64; line++ {
			r := c.Access(line, false)
			if pass > 0 && !r.Hit {
				t.Fatalf("pass %d line %d missed", pass, line)
			}
		}
	}
	_, _, ev, _ := c.Stats()
	if ev != 0 {
		t.Errorf("evictions = %d, want 0", ev)
	}
}
