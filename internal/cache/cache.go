// Package cache models a set-associative, write-allocate, write-back
// processor cache at cacheline granularity. The paper's performance bounds
// deliberately assume an ideal cache (no conflict misses, free writebacks,
// §5.1); this model supplies the realistic counterpart, quantifying the §6
// remark that strided vectors "leave a larger footprint" and generate many
// cache conflicts under natural-order accesses.
package cache

import "fmt"

// Config sizes the cache.
type Config struct {
	// SizeWords is the total capacity in 64-bit words.
	SizeWords int `json:"SizeWords"`
	// LineWords is the cacheline size in 64-bit words.
	LineWords int `json:"LineWords"`
	// Ways is the associativity. 1 is direct-mapped; use Sets()==1 for a
	// fully associative cache.
	Ways int `json:"Ways"`
}

// DefaultConfig returns a 16 KB direct-mapped cache with 32-byte lines —
// a typical L1 of the paper's era.
func DefaultConfig() Config {
	return Config{SizeWords: 2048, LineWords: 4, Ways: 1}
}

// Lines is the total number of cachelines.
func (c Config) Lines() int { return c.SizeWords / c.LineWords }

// Sets is the number of associative sets.
func (c Config) Sets() int { return c.Lines() / c.Ways }

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.LineWords <= 0:
		return fmt.Errorf("cache: LineWords must be positive, got %d", c.LineWords)
	case c.SizeWords <= 0 || c.SizeWords%c.LineWords != 0:
		return fmt.Errorf("cache: SizeWords %d must be a positive multiple of LineWords %d", c.SizeWords, c.LineWords)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways must be positive, got %d", c.Ways)
	case c.Lines()%c.Ways != 0:
		return fmt.Errorf("cache: %d lines do not divide into %d ways", c.Lines(), c.Ways)
	case c.Sets() == 0:
		return fmt.Errorf("cache: zero sets (capacity smaller than associativity)")
	}
	return nil
}

type way struct {
	tag     int64
	valid   bool
	dirty   bool
	lastUse int64
}

// Cache is the model. It tracks presence and dirtiness only; data values
// live in the memory model (the simulators are functionally decoupled).
type Cache struct {
	cfg   Config
	sets  [][]way
	clock int64

	hits, misses, evictions, dirtyEvictions int64
}

// New builds a cache. The configuration must be valid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Result reports the outcome of one cacheline access.
type Result struct {
	Hit bool
	// Evicted is the line index of a displaced valid line, or -1.
	Evicted int64
	// EvictedDirty is true when the displaced line must be written back.
	EvictedDirty bool
}

// Access touches the cacheline with the given index (address / LineWords),
// allocating it on a miss (write-allocate for stores and loads alike) and
// marking it dirty on a write. It returns the hit/eviction outcome; the
// caller performs the modeled memory traffic.
func (c *Cache) Access(line int64, write bool) Result {
	c.clock++
	set := c.sets[int(line%int64(len(c.sets)))]
	tag := line / int64(len(c.sets))
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			if write {
				set[i].dirty = true
			}
			c.hits++
			return Result{Hit: true, Evicted: -1}
		}
	}
	c.misses++
	// Choose the LRU way (or an invalid one).
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	res := Result{Evicted: -1}
	if set[victim].valid {
		c.evictions++
		res.Evicted = set[victim].tag*int64(len(c.sets)) + line%int64(len(c.sets))
		res.EvictedDirty = set[victim].dirty
		if set[victim].dirty {
			c.dirtyEvictions++
		}
	}
	set[victim] = way{tag: tag, valid: true, dirty: write, lastUse: c.clock}
	return res
}

// FlushDirty returns every dirty line (in no particular order) and marks
// the whole cache clean — the end-of-computation writeback sweep.
func (c *Cache) FlushDirty() []int64 {
	var out []int64
	for s := range c.sets {
		for i := range c.sets[s] {
			w := &c.sets[s][i]
			if w.valid && w.dirty {
				out = append(out, w.tag*int64(len(c.sets))+int64(s))
				w.dirty = false
			}
		}
	}
	return out
}

// Stats returns hit/miss/eviction counters.
func (c *Cache) Stats() (hits, misses, evictions, dirtyEvictions int64) {
	return c.hits, c.misses, c.evictions, c.dirtyEvictions
}

// HitRate is hits / (hits + misses).
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}
