// Stride explorer: sweep the vector stride of the vaxpy kernel and print
// how much of the device's attainable bandwidth the natural-order cache
// and the SMC each deliver — an interactive version of the paper's
// Figure 9, including the bank-conflict dips at pathological strides.
//
//	go run ./examples/strides
package main

import (
	"fmt"
	"log"

	"rdramstream"
)

func main() {
	fmt.Println("vaxpy, 1024 elements, FIFO depth 128, % of peak bandwidth")
	fmt.Printf("%6s  %10s  %10s  %10s  %10s\n", "stride", "CLI cache", "CLI SMC", "PI cache", "PI SMC")

	for _, stride := range []int64{1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64} {
		var cells [4]float64
		i := 0
		for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
			for _, mode := range []rdramstream.Controller{rdramstream.NaturalOrder, rdramstream.SMC} {
				out, err := rdramstream.Simulate(rdramstream.Scenario{
					KernelName: "vaxpy", N: 1024, Stride: stride,
					Scheme: scheme, Mode: mode, FIFODepth: 128,
					Placement: rdramstream.Staggered, SkipVerify: true,
				})
				if err != nil {
					log.Fatal(err)
				}
				cells[i] = out.PercentPeak
				i++
			}
		}
		flag := ""
		if stride%16 == 0 && stride > 1 {
			flag = "  <- bank-conflict stride (CLI lines collide)"
		}
		fmt.Printf("%6d  %9.1f%%  %9.1f%%  %9.1f%%  %9.1f%%%s\n",
			stride, cells[0], cells[1], cells[2], cells[3], flag)
	}
	fmt.Println("\nnon-unit strides use one word of each two-word packet: 50% of peak is")
	fmt.Println("the attainable ceiling, and the SMC approaches it except where a stride")
	fmt.Println("maps successive elements onto the same bank.")
}
