// Scientific workload: banded matrix-vector multiplication by diagonals —
// the computation the paper's vaxpy kernel comes from. Each diagonal d of
// a banded matrix A contributes y += A_d * x_d, which is exactly one vaxpy
// pass over three streams. The example runs every diagonal through the
// SMC, checks the numerics against a direct dense computation, and reports
// the sustained memory bandwidth of the whole solve.
//
//	go run ./examples/scientific
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"rdramstream"
)

const (
	n     = 512 // matrix dimension
	diags = 5   // bandwidth of the banded matrix (main ± 2)
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Dense reference data: A has `diags` non-zero diagonals.
	a := make([][]float64, diags) // a[d][i], diagonal offsets -2..+2
	offsets := []int{-2, -1, 0, 1, 2}
	for d := range a {
		a[d] = make([]float64, n)
		for i := range a[d] {
			a[d][i] = float64(rng.Intn(8)) / 4
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(rng.Intn(16)) / 8
	}

	// Golden result: y = sum over diagonals of A_d * x shifted by offset.
	golden := make([]float64, n)
	for d, off := range offsets {
		for i := 0; i < n; i++ {
			j := i + off
			if j < 0 || j >= n {
				continue
			}
			golden[i] += a[d][i] * x[j]
		}
	}

	// Stream the computation one diagonal at a time: y <- a_d*x_d + y.
	// Each pass is a vaxpy over the valid index range of that diagonal.
	var totalCycles int64
	var totalWords int64
	y := make([]float64, n)
	for d, off := range offsets {
		lo, hi := 0, n
		if off < 0 {
			lo = -off
		}
		if off > 0 {
			hi = n - off
		}
		length := hi - lo

		bases, err := rdramstream.LayoutVectors(rdramstream.PI, rdramstream.Staggered,
			[]int64{int64(length), int64(length), int64(length)})
		if err != nil {
			log.Fatal(err)
		}
		// The host-side numerics of this pass (the simulator seeds memory
		// with its own pattern for the timing run, so the real numbers are
		// computed here with the same vaxpy recurrence).
		aD, xD, yD := a[d][lo:hi], x[lo+off:hi+off], y[lo:hi]
		for i := 0; i < length; i++ {
			yD[i] = aD[i]*xD[i] + yD[i]
		}

		k := &rdramstream.Kernel{
			Name: fmt.Sprintf("vaxpy-diag%+d", off),
			Streams: []rdramstream.Stream{
				{Name: "a", Base: bases[0], Stride: 1, Length: length, Mode: rdramstream.Read},
				{Name: "x", Base: bases[1], Stride: 1, Length: length, Mode: rdramstream.Read},
				{Name: "y", Base: bases[2], Stride: 1, Length: length, Mode: rdramstream.Read},
				{Name: "y", Base: bases[2], Stride: 1, Length: length, Mode: rdramstream.Write},
			},
			Compute: func(_ int, in []float64) []float64 {
				return []float64{in[0]*in[1] + in[2]}
			},
		}
		out, err := rdramstream.SimulateKernel(k, rdramstream.Scenario{
			Scheme: rdramstream.PI, Mode: rdramstream.SMC, FIFODepth: 128,
		})
		if err != nil {
			log.Fatal(err)
		}
		totalCycles += out.Cycles
		totalWords += out.UsefulWords
		fmt.Printf("diagonal %+d: %4d elements, %6.1f%% of peak, verified=%v\n",
			off, length, out.PercentPeak, out.Verified)
	}

	// Numerics check.
	for i := range golden {
		if math.Abs(golden[i]-y[i]) > 1e-12 {
			log.Fatalf("element %d: got %v, want %v", i, y[i], golden[i])
		}
	}
	mbps := float64(totalWords*8) / (float64(totalCycles) * 2.5) * 1000
	fmt.Printf("\nbanded mat-vec (n=%d, %d diagonals): all results match the dense reference\n", n, diags)
	fmt.Printf("aggregate: %d stream words in %d cycles = %.0f MB/s sustained (peak 1600)\n",
		totalWords, totalCycles, mbps)
}
