// FIFO depth tuning: the paper's §6 notes that, unlike the fast-page-mode
// SMC (which had a compile-time formula), "the best FIFO depth must be
// chosen experimentally" on Rambus systems. This example runs that
// experiment for each benchmark kernel and prints the smallest depth that
// lands within two points of the best bandwidth — the depth a hardware
// designer would actually provision.
//
//	go run ./examples/tune
package main

import (
	"fmt"
	"log"

	"rdramstream"
)

func main() {
	depths := []int{8, 16, 32, 64, 128, 256}
	fmt.Println("smallest FIFO depth within 2 points of the best (1024-element vectors):")
	fmt.Printf("%-8s %-6s %10s %12s    %s\n", "kernel", "scheme", "depth", "% of peak", "full sweep")
	for _, kernel := range rdramstream.Kernels() {
		for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
			sc := rdramstream.Scenario{
				KernelName: kernel, N: 1024, Scheme: scheme,
				Placement: rdramstream.Staggered,
			}
			choice, results, err := rdramstream.TuneFIFODepth(sc, depths, 2)
			if err != nil {
				log.Fatal(err)
			}
			var at float64
			sweep := ""
			for _, r := range results {
				if r.Depth == choice {
					at = r.PercentPeak
				}
				sweep += fmt.Sprintf(" %d:%.0f%%", r.Depth, r.PercentPeak)
			}
			fmt.Printf("%-8s %-6v %10d %11.1f%%   %s\n", kernel, scheme, choice, at, sweep)
		}
	}
	fmt.Println("\ndeep FIFOs buy bandwidth only until the bus-turnaround bound flattens;")
	fmt.Println("the tuner finds the knee so the SBU is no larger than it needs to be.")
}
