// Multimedia workload: alpha-blending two video frames, one of the
// streaming computations the paper's introduction motivates. Two variants
// are compared:
//
//  1. planar frames (unit-stride streams) — the SMC streams at near peak;
//  2. extracting one channel from interleaved RGBA pixels (stride-4
//     streams) — packets are three-quarters wasted, so even perfect
//     ordering tops out at 50% of peak and delivers ~25%.
//
// This reproduces, on a real-looking workload, the paper's Figure 8/9
// story: access order fixes scheduling losses, but sparse packets waste
// bandwidth no controller can recover.
//
//	go run ./examples/multimedia
package main

import (
	"fmt"
	"log"

	"rdramstream"
)

const pixels = 2048 // one scanline block per pass

// blend builds the kernel out[i] = alpha*f1[i] + (1-alpha)*f2[i] over
// streams with the given stride.
func blend(alpha float64, stride int64, n int, scheme rdramstream.Interleave) *rdramstream.Kernel {
	foot := int64(n) * stride
	bases, err := rdramstream.LayoutVectors(scheme, rdramstream.Staggered, []int64{foot, foot, foot})
	if err != nil {
		log.Fatal(err)
	}
	return &rdramstream.Kernel{
		Name: "alpha-blend",
		Streams: []rdramstream.Stream{
			{Name: "frame1", Base: bases[0], Stride: stride, Length: n, Mode: rdramstream.Read},
			{Name: "frame2", Base: bases[1], Stride: stride, Length: n, Mode: rdramstream.Read},
			{Name: "out", Base: bases[2], Stride: stride, Length: n, Mode: rdramstream.Write},
		},
		Compute: func(_ int, in []float64) []float64 {
			return []float64{alpha*in[0] + (1-alpha)*in[1]}
		},
	}
}

func run(title string, stride int64, mode rdramstream.Controller) {
	k := blend(0.75, stride, pixels, rdramstream.PI)
	out, err := rdramstream.SimulateKernel(k, rdramstream.Scenario{
		Scheme: rdramstream.PI, Mode: mode, FIFODepth: 128,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-44s %6.1f%% of peak  (%4.0f MB/s, %5.1f%% of attainable, verified=%v)\n",
		title, out.PercentPeak, out.EffectiveMBps, out.PercentAttainable, out.Verified)
}

func main() {
	fmt.Printf("alpha blend of two %d-pixel scanline blocks on one Direct RDRAM:\n\n", pixels)
	run("planar frames, natural-order cache", 1, rdramstream.NaturalOrder)
	run("planar frames, SMC", 1, rdramstream.SMC)
	fmt.Println()
	run("interleaved RGBA, one channel (stride 4), cache", 4, rdramstream.NaturalOrder)
	run("interleaved RGBA, one channel (stride 4), SMC", 4, rdramstream.SMC)
	fmt.Println()
	fmt.Println("the SMC recovers the scheduling losses in both layouts, but only the")
	fmt.Println("planar layout lets it use every word of each 16-byte DATA packet —")
	fmt.Println("strided channel extraction caps at 50% of peak no matter the ordering.")
}
