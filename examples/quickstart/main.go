// Quickstart: run the paper's daxpy kernel through both memory
// controllers on both memory organizations and print the effective
// bandwidth each combination extracts from a single Direct RDRAM device.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rdramstream"
)

func main() {
	fmt.Println("daxpy (y[i] = a*x[i] + y[i]), 1024 64-bit elements, unit stride")
	fmt.Println("peak device bandwidth: 1.6 GB/s (one Direct RDRAM -50/-800 part)")
	fmt.Println()
	fmt.Printf("%-28s %-10s %12s %12s\n", "configuration", "verified", "% of peak", "MB/s")

	type combo struct {
		name string
		sc   rdramstream.Scenario
	}
	base := rdramstream.Scenario{KernelName: "daxpy", N: 1024, Placement: rdramstream.Staggered}
	combos := []combo{}
	for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
		nat := base
		nat.Scheme = scheme
		nat.Mode = rdramstream.NaturalOrder
		combos = append(combos, combo{fmt.Sprintf("%v natural-order cache", scheme), nat})

		smc := base
		smc.Scheme = scheme
		smc.Mode = rdramstream.SMC
		smc.FIFODepth = 128
		combos = append(combos, combo{fmt.Sprintf("%v SMC (fifo=128)", scheme), smc})
	}

	var natCLI, smcCLI float64
	for _, c := range combos {
		out, err := rdramstream.Simulate(c.sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %-10v %11.1f%% %12.0f\n", c.name, out.Verified, out.PercentPeak, out.EffectiveMBps)
		if c.sc.Mode == rdramstream.NaturalOrder && c.sc.Scheme == rdramstream.CLI {
			natCLI = out.PercentPeak
		}
		if c.sc.Mode == rdramstream.SMC && c.sc.Scheme == rdramstream.CLI {
			smcCLI = out.PercentPeak
		}
	}

	fmt.Println()
	fmt.Printf("dynamic access ordering improves CLI bandwidth by %.2fx\n", smcCLI/natCLI)

	// The analytic bounds of the paper's §5 predict the SMC's ceiling.
	b := rdramstream.DefaultBounds()
	fmt.Printf("analytic SMC bound (Eq 5.15-5.18): %.1f%% of peak\n",
		b.SMCCombinedBound(false, 2, 1, 128, 1024))
}
