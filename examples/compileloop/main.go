// Compiler path: the paper's §3 software half. Instead of hand-building
// stream descriptors, describe the inner loop as affine array references
// and let the stream-detection pass extract, place, and bind the streams —
// then run the compiled kernel through the SMC. The example also shows a
// loop the pass must reject (a loop-carried dependence the SMC cannot
// reorder safely).
//
//	go run ./examples/compileloop
package main

import (
	"fmt"
	"log"

	"rdramstream"
)

func main() {
	// tridiagonal-ish smoothing: out[i] = (a[i] + a[i+1] + a[i+2]) / 3.
	loop := rdramstream.Loop{
		N: 1024,
		Body: []rdramstream.Ref{
			{Array: "a", Scale: 1, Offset: 0},
			{Array: "a", Scale: 1, Offset: 1},
			{Array: "a", Scale: 1, Offset: 2},
			{Array: "out", Scale: 1, Write: true},
		},
		Compute: func(_ int, in []float64) []float64 {
			return []float64{(in[0] + in[1] + in[2]) / 3}
		},
	}

	names, words, err := rdramstream.LoopFootprints(loop)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected arrays: %v (footprints %v words)\n", names, words)

	bases, err := rdramstream.LayoutVectors(rdramstream.PI, rdramstream.Staggered, words)
	if err != nil {
		log.Fatal(err)
	}
	bind := rdramstream.Binding{}
	for i, name := range names {
		bind[name] = bases[i]
	}
	k, err := rdramstream.CompileLoop(loop, bind)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d streams (%d read, %d write)\n", len(k.Streams), k.ReadStreams(), k.WriteStreams())
	for _, s := range k.Streams {
		fmt.Printf("  %v\n", s)
	}

	out, err := rdramstream.SimulateKernel(k, rdramstream.Scenario{
		Scheme: rdramstream.PI, Mode: rdramstream.SMC, FIFODepth: 64,
		Placement: rdramstream.Staggered,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSMC: %.1f%% of peak (%.0f MB/s), verified=%v\n",
		out.PercentPeak, out.EffectiveMBps, out.Verified)

	// A loop the pass must refuse: out[i] depends on out[i-1].
	recurrence := rdramstream.Loop{
		N: 64,
		Body: []rdramstream.Ref{
			{Array: "out", Scale: 1, Offset: 0},
			{Array: "out", Scale: 1, Offset: 1, Write: true},
		},
		Compute: func(_ int, in []float64) []float64 { return []float64{in[0] * 2} },
	}
	if _, err := rdramstream.CompileLoop(recurrence, rdramstream.Binding{"out": 0}); err != nil {
		fmt.Printf("\nrecurrence correctly rejected: %v\n", err)
	} else {
		log.Fatal("recurrence was not rejected")
	}
}
