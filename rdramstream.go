// Package rdramstream is a cycle-based study of access order and effective
// bandwidth for streaming computations on a Direct Rambus DRAM, reproducing
// Hong et al., "Access Order and Effective Bandwidth for Streams on a
// Direct Rambus Memory" (HPCA 1999).
//
// It bundles:
//
//   - a packet-level Direct RDRAM device timing model (banks, sense amps,
//     ROW/COL/DATA buses, open/closed page policies);
//   - two memory organizations: cacheline interleaving with a closed-page
//     policy (CLI) and page interleaving with an open-page policy (PI);
//   - a natural-order cacheline controller (the conventional baseline);
//   - a Stream Memory Controller (SMC): per-stream FIFOs plus a Memory
//     Scheduling Unit that dynamically reorders stream accesses;
//   - the paper's analytic performance bounds (§5); and
//   - the benchmark kernels (copy, daxpy, hydro, vaxpy) and experiment
//     harnesses that regenerate every figure and table.
//
// # Quickstart
//
//	out, err := rdramstream.Simulate(rdramstream.Scenario{
//	    KernelName: "daxpy",
//	    N:          1024,
//	    Scheme:     rdramstream.PI,
//	    Mode:       rdramstream.SMC,
//	    FIFODepth:  128,
//	    Placement:  rdramstream.Staggered,
//	})
//	// out.PercentPeak ≈ 95+: the SMC extracts nearly all of the device's
//	// 1.6 GB/s for long unit-stride streams.
//
// Custom workloads build a Kernel from Streams (see SimulateKernel and
// LayoutVectors), and the analytic bounds are available through Bounds.
package rdramstream

import (
	"context"
	"io"

	"rdramstream/internal/addrmap"
	"rdramstream/internal/analytic"
	"rdramstream/internal/cache"
	"rdramstream/internal/compiler"
	"rdramstream/internal/fault"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/smc"
	"rdramstream/internal/stream"
	"rdramstream/internal/telemetry"
	"rdramstream/internal/trace"
	"rdramstream/internal/tracegen"
	"rdramstream/internal/version"
	"rdramstream/internal/workload"
)

// Core workload types, re-exported from the implementation packages so
// there is a single source of truth.
type (
	// Kernel is an inner loop over a set of streams.
	Kernel = stream.Kernel
	// Stream describes one vector access pattern (base, stride, length,
	// direction).
	Stream = stream.Stream
	// Mode is a stream direction (Read or Write).
	Mode = stream.Mode
	// Scenario configures a simulation run.
	Scenario = sim.Scenario
	// Outcome reports bandwidth, traffic, and verification results.
	Outcome = sim.Outcome
	// Bounds evaluates the paper's §5 analytic models.
	Bounds = analytic.Params
	// DeviceConfig is the Direct RDRAM timing and geometry.
	DeviceConfig = rdram.Config
	// CacheConfig sizes the optional realistic processor cache in front of
	// the natural-order controller (Scenario.Cache).
	CacheConfig = cache.Config
	// DeviceTiming is the set of Figure 2 timing parameters.
	DeviceTiming = rdram.Timing
	// Interleave selects the memory organization.
	Interleave = addrmap.Scheme
	// Placement selects the vector-to-bank alignment.
	Placement = stream.Placement
	// Controller selects the memory controller under test.
	Controller = sim.Mode
	// Policy selects the MSU scheduling algorithm.
	Policy = smc.Policy
)

// Re-exported enum values.
const (
	// CLI is cacheline interleaving with a closed-page policy.
	CLI = addrmap.CLI
	// PI is page interleaving with an open-page policy.
	PI = addrmap.PI

	// Aligned places every vector base in the same bank (maximal
	// conflicts); Staggered spreads them across banks.
	Aligned   = stream.Aligned
	Staggered = stream.Staggered

	// NaturalOrder is the conventional cacheline controller; SMC the
	// Stream Memory Controller.
	NaturalOrder = sim.NaturalOrder
	SMC          = sim.SMC

	// RoundRobin is the paper's MSU policy; BankAware and HitFirst are the
	// §6 extension policies (conflict avoidance and row-latency hiding).
	RoundRobin = smc.RoundRobin
	BankAware  = smc.BankAware
	HitFirst   = smc.HitFirst

	// Read and Write are stream directions.
	Read  = stream.Read
	Write = stream.Write
)

// Simulate runs one of the built-in benchmark kernels (see Kernels) under
// the scenario and returns its outcome, functionally verified unless
// Scenario.SkipVerify is set.
func Simulate(sc Scenario) (Outcome, error) { return sim.Run(sc) }

// SimulateKernel runs a caller-built kernel. Place its vectors with
// LayoutVectors (or any non-overlapping page-aligned layout of your own).
func SimulateKernel(k *Kernel, sc Scenario) (Outcome, error) { return sim.RunKernel(k, sc) }

// SimulateAll runs the scenarios on a bounded worker pool (workers <= 0
// uses GOMAXPROCS) and returns the outcomes in scenario order. Results are
// identical to running each scenario serially — parallelism is purely a
// wall-clock optimization.
func SimulateAll(scs []Scenario, workers int) ([]Outcome, error) { return sim.RunAll(scs, workers) }

// SimulateAllCtx is SimulateAll with cancellation: once ctx is done no
// further scenario starts and the sweep returns the context's error, while
// scenarios already in flight complete. It is the entry point the serving
// layer (internal/service, cmd/rdserved) threads request timeouts through.
func SimulateAllCtx(ctx context.Context, scs []Scenario, workers int) ([]Outcome, error) {
	return sim.RunAllCtx(ctx, scs, workers)
}

// Version is the build's identity stamp — module version plus a
// fingerprint of the simulation model's fixed parameters. Every cmd
// prints it for -version, and the serving layer's result cache embeds it
// in cache keys so outcomes from a different model version never leak
// across an upgrade.
func Version() string { return version.Stamp() }

// Controllers lists the names accepted by Scenario.Controller: the
// registered access-ordering policies, including any added through the
// engine registry extension point.
func Controllers() []string { return sim.Controllers() }

// Kernels lists the built-in benchmark kernel names.
func Kernels() []string {
	names := make([]string, len(stream.Benchmarks))
	for i, f := range stream.Benchmarks {
		names[i] = f.Name
	}
	return names
}

// LayoutVectors assigns non-overlapping, bank-placed base addresses to
// vectors with the given footprints (in 64-bit words) for the default
// device geometry.
func LayoutVectors(scheme Interleave, placement Placement, footprints []int64) ([]int64, error) {
	return stream.Layout(scheme, rdram.DefaultGeometry(), 4, footprints, placement)
}

// DefaultBounds returns the paper's system parameters for the analytic
// models: -50/-800 part timing, 32-byte lines, 1 KB pages.
func DefaultBounds() Bounds { return analytic.DefaultParams() }

// Loop, Ref, and Binding form the compiler-side interface of §3: describe
// an affine inner loop, let Detect/Compile extract its stream descriptors.
type (
	Loop    = compiler.Loop
	Ref     = compiler.Ref
	Binding = compiler.Binding
)

// CompileLoop runs the §3 stream-detection pass over an affine inner loop
// and binds its arrays to addresses, yielding a simulatable Kernel. Use
// LoopFootprints + LayoutVectors to obtain non-overlapping bases first.
func CompileLoop(l Loop, bind Binding) (*Kernel, error) { return compiler.Compile(l, bind) }

// LoopFootprints reports the arrays a loop touches (in first-appearance
// order) and the words of memory each needs.
func LoopFootprints(l Loop) (names []string, words []int64, err error) {
	return compiler.Footprints(l)
}

// DepthResult is one point of a FIFO-depth search.
type DepthResult = smc.DepthResult

// TuneFIFODepth runs the scenario's kernel at each candidate FIFO depth
// and returns the smallest depth whose bandwidth lands within tolerance
// percentage points of the best, plus every measurement. The paper's §6:
// "the best FIFO depth must be chosen experimentally" — this is that
// experiment.
func TuneFIFODepth(sc Scenario, depths []int, tolerance float64) (int, []DepthResult, error) {
	if sc.Device.Timing.TPack == 0 {
		sc.Device = rdram.DefaultConfig()
	}
	if sc.LineWords == 0 {
		sc.LineWords = 4
	}
	k, err := sim.BuildKernel(sc)
	if err != nil {
		return 0, nil, err
	}
	cfg := smc.Config{
		Scheme: sc.Scheme, LineWords: sc.LineWords,
		Policy: sc.Policy, SpeculateActivate: sc.SpeculateActivate,
	}
	return smc.TuneDepth(sc.Device, k, cfg, depths, tolerance)
}

// DefaultDevice returns the paper's device configuration: eight banks,
// 1 KB pages, the Figure 2 timing, refresh disabled.
func DefaultDevice() DeviceConfig { return rdram.DefaultConfig() }

// Observability layer: cycle-level telemetry and trace validation.
type (
	// Telemetry collects cycle-level instrumentation for one run: per-bank
	// device counters, windowed bus occupancy and bandwidth, stall-cause
	// attribution of idle DATA-bus cycles, FIFO depth/starvation, and the
	// miss-latency histogram. Attach it via Scenario.Telemetry and read it
	// back (Report, WriteMetricsJSON, WriteSeriesCSV, WriteChromeTrace,
	// WriteEventsJSONL) after the run.
	Telemetry = telemetry.Collector
	// TelemetryOptions configures NewTelemetry (window width, event
	// capture).
	TelemetryOptions = telemetry.Options
	// TelemetryReport is the JSON-friendly snapshot of a Telemetry.
	TelemetryReport = telemetry.Report
	// StallCause classifies why a DATA-bus cycle went idle.
	StallCause = telemetry.StallCause
	// TraceEvent is one packet scheduled on a device bus.
	TraceEvent = rdram.TraceEvent
	// TraceRecorder collects TraceEvents (hand its Hook to
	// Scenario.Trace).
	TraceRecorder = rdram.Recorder
	// TraceViolation is one Direct RDRAM protocol rule broken by a trace.
	TraceViolation = trace.Violation
)

// NewTelemetry builds a telemetry collector; the zero Options give
// 256-cycle windows with event capture off.
func NewTelemetry(o TelemetryOptions) *Telemetry { return telemetry.New(o) }

// Trace-driven workloads (internal/tracegen): a deterministic,
// seed-driven generator DSL plus an NDJSON trace wire format. Attach a
// TraceSpec via Scenario.Workload to replay a trace instead of a
// benchmark kernel; see docs/WORKLOADS.md for the DSL grammar, the wire
// format, and the cache-key semantics.
type (
	// TraceProgram is a seeded sequence of generator phases.
	TraceProgram = tracegen.Program
	// TracePhase is one pattern instance of a TraceProgram.
	TracePhase = tracegen.Phase
	// TraceSpec names a trace workload: a generator program or an
	// explicit access list (Scenario.Workload).
	TraceSpec = tracegen.Spec
	// TraceAccess is one word-level request of an address trace.
	TraceAccess = workload.TraceAccess
)

// ParseTraceProgram parses the one-line trace-generator DSL
// ("pattern:key=val,...;pattern2:..." — see docs/WORKLOADS.md).
func ParseTraceProgram(spec string, seed int64) (*TraceProgram, error) {
	return tracegen.ParseProgram(spec, seed)
}

// TraceSpecFromArg resolves a CLI -trace-gen argument: "@path" loads an
// NDJSON trace file, anything else parses as the program DSL. The
// second return is the trace's display name.
func TraceSpecFromArg(arg string, seed int64) (*TraceSpec, string, error) {
	return tracegen.SpecFromArg(arg, seed)
}

// EncodeTrace writes a trace in the NDJSON wire format (header line +
// access lines); the encoding is byte-deterministic.
func EncodeTrace(w io.Writer, name string, accs []TraceAccess) error {
	return tracegen.Encode(w, name, accs)
}

// DecodeTrace reads a complete NDJSON trace, rejecting malformed lines
// (with line numbers), count mismatches, and trailing garbage.
func DecodeTrace(r io.Reader) (name string, accs []TraceAccess, err error) {
	h, accs, err := tracegen.Decode(r)
	return h.Name, accs, err
}

// FaultConfig configures the deterministic fault injector (refresh storms,
// per-bank latency jitter, transient access rejections). Attach one via
// Scenario.Fault; the same seed always produces the same fault sequence,
// and a zero-severity config is bit-identical to running with no faults.
// See docs/ROBUSTNESS.md for the fault model.
type FaultConfig = fault.Config

// ScaledFaults maps an integer severity (0 = off) onto the canonical fault
// configuration used by the -faults sweep: rejection probability, jitter
// amplitude, and refresh-storm shape all grow with severity.
func ScaledFaults(seed int64, severity int) FaultConfig { return fault.Scaled(seed, severity) }

// ParseInterleave resolves a memory-organization name (case-insensitive
// "CLI" or "PI") — the single flag-parsing path the CLIs share. Unknown
// names return an error wrapping addrmap.ErrUnknownScheme.
func ParseInterleave(name string) (Interleave, error) { return addrmap.ParseScheme(name) }

// CheckTrace validates a recorded device trace against the Direct RDRAM
// protocol rules of the paper's Figure 2 — an oracle independent of the
// device implementation. It returns every violation found (nil = clean).
func CheckTrace(cfg DeviceConfig, events []TraceEvent) []TraceViolation {
	return trace.NewChecker(cfg).Check(events)
}
