module rdramstream

go 1.22
