// Benchmarks that regenerate every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each BenchmarkFigure*
// rebuilds its artifact once per iteration; the reported ns/op is the cost
// of the full reproduction, and the b.Log output carries the headline
// values so a bench run doubles as a results report (-v to see them).
package rdramstream_test

import (
	"testing"

	"rdramstream"
	"rdramstream/internal/addrmap"
	"rdramstream/internal/analytic"
	"rdramstream/internal/experiments"
	"rdramstream/internal/rdram"
	"rdramstream/internal/sim"
	"rdramstream/internal/stream"
)

// BenchmarkFigure1DRAMComparison regenerates the Figure 1 DRAM table.
func BenchmarkFigure1DRAMComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure1(); len(tab.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure2TimingTable regenerates the Figure 2 parameter table.
func BenchmarkFigure2TimingTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure2(); len(tab.Rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure5Timeline renders the CLI protocol timeline.
func BenchmarkFigure5Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Timeline renders the PI protocol timeline.
func BenchmarkFigure6Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7PanelVaxpyPI1024 regenerates one representative Figure 7
// panel (five FIFO depths, two placements, plus the analytic limits).
func BenchmarkFigure7PanelVaxpyPI1024(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := experiments.Figure7Panel("vaxpy", addrmap.PI, 1024)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("vaxpy/PI/1024 staggered by depth: %v", p.Staggered)
		}
	}
}

// BenchmarkFigure7AllPanels regenerates the full sixteen-panel grid.
func BenchmarkFigure7AllPanels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		panels, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		if len(panels) != 16 {
			b.Fatalf("panels = %d", len(panels))
		}
	}
}

// BenchmarkFigure7Serial regenerates the sixteen-panel grid on one worker
// — the baseline for the parallel-sweep speedup (BENCH_parallel_sweep.json
// compares this against BenchmarkFigure7Parallel4).
func BenchmarkFigure7Serial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7Parallel(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7Parallel4 regenerates the grid on four workers. The
// speedup over BenchmarkFigure7Serial tracks the available cores (on a
// single-core machine it is honestly ~1x).
func BenchmarkFigure7Parallel4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7Parallel(4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerial runs the determinism-test scenario sweep serially.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel4 runs the same sweep on four workers.
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }

func benchSweep(b *testing.B, workers int) {
	var scs []rdramstream.Scenario
	for _, kn := range []string{"copy", "daxpy", "hydro", "vaxpy"} {
		for _, scheme := range []rdramstream.Interleave{rdramstream.CLI, rdramstream.PI} {
			for _, depth := range []int{8, 32, 128} {
				scs = append(scs, rdramstream.Scenario{
					KernelName: kn, N: 1024, Scheme: scheme, Mode: rdramstream.SMC,
					FIFODepth: depth, Placement: rdramstream.Staggered, SkipVerify: true,
				})
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdramstream.SimulateAll(scs, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8StridedFill regenerates the strided cacheline-fill table.
func BenchmarkFigure8StridedFill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if tab := experiments.Figure8(); len(tab.Rows) != 32 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFigure9NonUnitStride regenerates the strided vaxpy comparison.
func BenchmarkFigure9NonUnitStride(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("stride 4 row: %v", tab.Rows[0])
		}
	}
}

// BenchmarkHeadlineNumbers regenerates the quoted-number comparison table.
func BenchmarkHeadlineNumbers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.HeadlineNumbers(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerAblation runs the MSU-policy ablation grid.
func BenchmarkSchedulerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SchedulerAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticBounds evaluates the full set of §5 equations across a
// parameter sweep — the analytic models must stay trivially cheap.
func BenchmarkAnalyticBounds(b *testing.B) {
	p := analytic.DefaultParams()
	for i := 0; i < b.N; i++ {
		var acc float64
		for s := 1; s <= 8; s++ {
			for _, f := range []int{8, 32, 128} {
				acc += p.CacheMultiCLI(s, 1024) + p.CacheMultiPI(s, 1024)
				acc += p.SMCCombinedBound(true, s, 1, f, 1024)
				acc += p.SMCCombinedBound(false, s, 1, f, 1024)
			}
		}
		if acc <= 0 {
			b.Fatal("bounds vanished")
		}
	}
}

// BenchmarkChannelScaling runs the multi-device channel extension table.
func BenchmarkChannelScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ChannelScaling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWritebackAblation runs the §6 writeback-cost table.
func BenchmarkWritebackAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WritebackAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheConflictAblation runs the §6 cache-conflict table.
func BenchmarkCacheConflictAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CacheConflictAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefreshAblation runs the refresh-overhead table.
func BenchmarkRefreshAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RefreshAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- simulator micro-benchmarks ---

// BenchmarkRun measures one full simulation per kernel × controller at
// n=1024, plus long-stream (64K-element) variants at the scale a
// downstream sweep would run. These are the hot-path numbers the
// event-driven core refactor is pinned against (docs/PERFORMANCE.md,
// BENCH_core_speed.json).
func BenchmarkRun(b *testing.B) {
	controllers := []struct {
		name string
		mode rdramstream.Controller
	}{
		{"smc", rdramstream.SMC},
		{"natural", rdramstream.NaturalOrder},
	}
	for _, kn := range []string{"copy", "daxpy", "hydro", "vaxpy"} {
		for _, c := range controllers {
			sc := rdramstream.Scenario{
				KernelName: kn, N: 1024, Scheme: rdramstream.PI, Mode: c.mode,
				FIFODepth: 128, Placement: rdramstream.Staggered, SkipVerify: true,
			}
			b.Run(kn+"/"+c.name, func(b *testing.B) { benchScenario(b, sc) })
		}
	}
	for _, c := range controllers {
		sc := rdramstream.Scenario{
			KernelName: "daxpy", N: 65536, Scheme: rdramstream.PI, Mode: c.mode,
			FIFODepth: 128, Placement: rdramstream.Staggered, SkipVerify: true,
		}
		b.Run("long/daxpy/"+c.name, func(b *testing.B) { benchScenario(b, sc) })
	}
}

func benchScenario(b *testing.B, sc rdramstream.Scenario) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rdramstream.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceOpenPageRead measures the raw device model: back-to-back
// page-hit packet reads.
func BenchmarkDeviceOpenPageRead(b *testing.B) {
	d := rdram.NewDevice(rdram.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Do(0, rdram.Request{Bank: 0, Row: 0, Col: i % 64})
	}
}

// BenchmarkSMCCopy1024 measures a full SMC simulation of copy.
func BenchmarkSMCCopy1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := rdramstream.Simulate(rdramstream.Scenario{
			KernelName: "copy", N: 1024, Scheme: rdramstream.CLI,
			Mode: rdramstream.SMC, FIFODepth: 128,
			Placement: rdramstream.Staggered, SkipVerify: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if out.PercentPeak < 50 {
			b.Fatalf("suspicious result %v", out.PercentPeak)
		}
	}
}

// BenchmarkNaturalOrderDaxpy1024 measures a full natural-order simulation.
func BenchmarkNaturalOrderDaxpy1024(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rdramstream.Simulate(rdramstream.Scenario{
			KernelName: "daxpy", N: 1024, Scheme: addrmap.PI,
			Mode: sim.NaturalOrder, Placement: stream.Staggered, SkipVerify: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSMCLongVector measures simulation throughput on a long stream
// (64K elements), the scale a downstream user would sweep.
func BenchmarkSMCLongVector(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rdramstream.Simulate(rdramstream.Scenario{
			KernelName: "daxpy", N: 65536, Scheme: rdramstream.PI,
			Mode: rdramstream.SMC, FIFODepth: 128,
			Placement: rdramstream.Staggered, SkipVerify: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- telemetry overhead benchmarks ---

// benchTelemetryScenario is the canonical daxpy/SMC/PI/fifo-128 scenario
// the telemetry overhead numbers (BENCH_telemetry.json) are quoted for.
func benchTelemetryScenario() rdramstream.Scenario {
	return rdramstream.Scenario{
		KernelName: "daxpy", N: 1024, Scheme: rdramstream.PI,
		Mode: rdramstream.SMC, FIFODepth: 128,
		Placement: rdramstream.Staggered, SkipVerify: true,
	}
}

// BenchmarkTelemetryOffDaxpySMCPI runs with no collector attached — the
// nil-guarded path every uninstrumented simulation takes. Compare against
// the pre-telemetry baseline to measure the cost of the guards themselves.
func BenchmarkTelemetryOffDaxpySMCPI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rdramstream.Simulate(benchTelemetryScenario()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryOnDaxpySMCPI attaches a counters-only collector
// (series, histograms, stall attribution; no event capture).
func BenchmarkTelemetryOnDaxpySMCPI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchTelemetryScenario()
		sc.Telemetry = rdramstream.NewTelemetry(rdramstream.TelemetryOptions{Window: 256})
		if _, err := rdramstream.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryCaptureDaxpySMCPI additionally captures the event
// stream that feeds the JSONL and Chrome-trace exports — the most
// expensive telemetry configuration.
func BenchmarkTelemetryCaptureDaxpySMCPI(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := benchTelemetryScenario()
		sc.Telemetry = rdramstream.NewTelemetry(rdramstream.TelemetryOptions{Window: 256, CaptureEvents: true})
		if _, err := rdramstream.Simulate(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriorFPMSystem regenerates the §3 fast-page-mode system table.
func BenchmarkPriorFPMSystem(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PriorSystem(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrispEfficiency regenerates the random-workload channel table.
func BenchmarkCrispEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrispEfficiency(); err != nil {
			b.Fatal(err)
		}
	}
}
